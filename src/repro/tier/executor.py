"""Tiered (CPU+GPU co-executed) join and group-by operators.

The placement-aware pass splits one logical operator into a GPU
sub-operator over resident (hot) segments and a CPU sub-operator over
cold ones, runs the two concurrently (Eiger-style heterogeneous
overlap: the operator's elapsed time is the max of the two tiers plus
merge and staging), and merges the partial results **bit-identically**
to the single-device ``execute()`` path:

* joins compute matches per probe segment with the canonical
  searchsorted construction of
  :func:`~repro.joins.matching.match_positions`; concatenating the
  per-segment pairs in segment order *is* the global s-major match
  order of :func:`~repro.relational.validation.join_match_indices`,
  independent of which segments happen to be resident;
* group-bys fold exact per-tier partial aggregates (int64 sums/counts,
  elementwise min/max merge, mean recomputed from merged sums and
  counts) keyed by group key — identical to the monolithic
  ``segmented_aggregate`` in the integer-exact regime the library
  already assumes.

The oracle suite (``tests/oracle/test_tier_oracle.py``) pins both
properties across hot/cold/mixed placements, eviction mid-query, and
fault-injected capacity pressure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..aggregation.base import AggSpec
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, CPU_SERVER, DeviceSpec
from ..gpusim.kernel import KernelStats
from ..gpusim.memory import BufferPool, DeviceMemory
from ..joins.base import JoinConfig, detect_unique_keys
from ..joins.matching import expand_bounds
from ..obs.session import TraceSession, current_session
from ..primitives.grouping import distinct_sorted, group_identify, stable_key_order
from ..relational.relation import Relation
from .cache import SegmentCache
from .costmodel import TierCostModel
from .policy import PlacementPolicy
from .segments import SegmentedRelation, SegmentKey

#: Default rows per column segment (Mordred uses fixed-size segments;
#: at the library's scaled workloads this yields tens of segments per
#: relation, enough for meaningfully mixed placements).
DEFAULT_SEGMENT_ROWS = 4096


@dataclass
class TieredOpResult:
    """One tier-split operator: output plus co-execution accounting."""

    output: object
    seconds: float
    rows: int
    hot_segments: int
    cold_segments: int
    extras: Dict[str, float] = field(default_factory=dict)
    algorithm: str = "TIER"


class TieredRuntime:
    """Segment registry + cache + policy + the tier-split operators.

    One runtime is shared across queries (typically owned by a
    :class:`~repro.serve.server.QueryServer`): the cache's contents and
    the policy's access/popularity history persist, which is what makes
    hot templates cheap.

    Parameters
    ----------
    memory:
        Backing :class:`DeviceMemory` for resident segments.  ``None``
        creates a private one of ``capacity_bytes``; the serving layer
        passes its own so reservations and segments compete.
    capacity_bytes:
        Cache byte budget.  Defaults to ``cache_fraction`` of the
        device's memory.
    """

    def __init__(
        self,
        device: DeviceSpec = A100,
        cpu_device: DeviceSpec = CPU_SERVER,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        capacity_bytes: Optional[int] = None,
        cache_fraction: float = 0.5,
        memory: Optional[DeviceMemory] = None,
        policy: Optional[PlacementPolicy] = None,
        auto_register: bool = True,
        min_admit_weight: float = 1.0,
        amortize_admission: bool = False,
    ):
        self.device = device
        self.cpu_device = cpu_device
        self.segment_rows = int(segment_rows)
        if capacity_bytes is None:
            capacity_bytes = int(device.global_mem_bytes * cache_fraction)
        self.capacity_bytes = int(capacity_bytes)
        if memory is None:
            # Segment buffers come in one shape per (relation, column),
            # so eviction/re-admission churn recycles well; the pool
            # also mirrors pool.* metrics once a session is wired in.
            memory = DeviceMemory(self.capacity_bytes, pool=BufferPool())
        self.memory = memory
        self.policy = policy or PlacementPolicy()
        self.cache = SegmentCache(memory, capacity_bytes=self.capacity_bytes)
        self.cost = TierCostModel(device, cpu_device)
        self.auto_register = auto_register
        self.min_admit_weight = float(min_admit_weight)
        # ``amortize_admission`` raises the admission bar to the cost
        # model's break-even reuse count: a segment is only staged when
        # its predicted accesses (decayed history x relation popularity)
        # repay the interconnect transfer with GPU-vs-CPU savings.
        # One-off scans then run on the CPU tier instead of paying PCIe
        # for data they will never touch again.
        self.amortize_admission = bool(amortize_admission)
        self._by_id: Dict[int, SegmentedRelation] = {}
        self._names: Dict[str, int] = {}

    # -- registry ------------------------------------------------------------

    def register(
        self, relation: Relation, name: Optional[str] = None
    ) -> SegmentedRelation:
        """Segment *relation* (idempotent; names are made unique).

        ``name`` overrides the relation's own display name — the serving
        layer passes its catalog name so tier counters, popularity and
        placement spans read in catalog terms.
        """
        existing = self._by_id.get(id(relation))
        if existing is not None:
            return existing
        base = name or relation.name or f"relation@{id(relation):x}"
        name = base
        suffix = 1
        while name in self._names:
            name = f"{base}#{suffix}"
            suffix += 1
        segrel = SegmentedRelation(relation, self.segment_rows, name=name)
        self._by_id[id(relation)] = segrel
        self._names[name] = id(relation)
        return segrel

    def segmented(self, relation: Relation) -> Optional[SegmentedRelation]:
        segrel = self._by_id.get(id(relation))
        if segrel is None and self.auto_register:
            segrel = self.register(relation)
        return segrel

    def handles(self, relation: Relation) -> bool:
        return self.auto_register or id(relation) in self._by_id

    def invalidate_relation(self, relation_or_name) -> int:
        """Evict and forget a (possibly updated) relation; bytes freed."""
        if isinstance(relation_or_name, str):
            name = relation_or_name
            rel_id = self._names.pop(name, None)
            if rel_id is not None:
                self._by_id.pop(rel_id, None)
        else:
            segrel = self._by_id.pop(id(relation_or_name), None)
            if segrel is None:
                return 0
            name = segrel.name
            self._names.pop(name, None)
        self.policy.forget(name)
        return self.cache.evict_relation(name)

    def note_plan(self, plan, weight: float = 1.0) -> None:
        """Fold one arrival of *plan* into relation popularity (serve feed)."""
        for relation in _scan_relations(plan):
            segrel = self.segmented(relation)
            if segrel is not None:
                self.policy.note_popularity(segrel.name, weight)

    # -- pressure ------------------------------------------------------------

    def apply_capacity_pressure(
        self, frac: Optional[float], session: Optional[TraceSession] = None
    ) -> int:
        """Shrink the cache under fault-injected capacity pressure.

        ``frac=None`` lifts the pressure.  Overflowing segments are
        demoted to the CPU tier — queries degrade to more cold work
        instead of failing with OOM.
        """
        cap = None if frac is None else int(self.capacity_bytes * frac)
        freed = self.cache.apply_pressure(cap)
        if freed and session is not None:
            session.count("tier.pressure_demoted_bytes", freed)
            session.count("tier.pressure_demotions")
        return freed

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for reports and benches."""
        cache = self.cache
        return {
            "resident_bytes": float(cache.resident_bytes),
            "resident_segments": float(len(cache.resident_keys())),
            "hit_ratio": cache.hit_ratio,
            "hits": float(cache.hits),
            "misses": float(cache.misses),
            "hit_bytes": float(cache.hit_bytes),
            "miss_bytes": float(cache.miss_bytes),
            "admissions": float(cache.admissions),
            "admitted_bytes": float(cache.admitted_bytes),
            "evictions": float(cache.evictions),
            "demotions": float(cache.demotions),
            "declined": float(cache.declined),
        }

    # -- placement -----------------------------------------------------------

    def _place(
        self,
        wants: Sequence[Tuple[SegmentedRelation, Sequence[str]]],
        session: Optional[TraceSession],
        op: str,
    ) -> Dict[str, float]:
        """One placement pass for an operator reading *wants*.

        Row-range granular: the columns a range needs are admitted (and
        scored) as a bundle, so placement never strands a range with its
        key resident but a payload cold.  Returns accounting for the
        operator's extras/spans; admission transfer is charged by the
        caller from ``admitted_bytes``.
        """
        policy = self.policy
        cache = self.cache
        policy.begin_pass()
        before_evicted = cache.evictions
        candidates = []
        protect: Set[SegmentKey] = set()
        for segrel, columns in wants:
            for index in range(segrel.num_segments):
                keys = segrel.keys_for(columns, index)
                nbytes = segrel.range_nbytes(columns, index)
                for key in keys:
                    policy.note_access(key)
                missing = [
                    (key, column)
                    for key, column in zip(keys, columns)
                    if not cache.is_resident(key)
                ]
                if not missing:
                    protect.update(keys)  # current op's working set is pinned
                    continue
                score = policy.score(keys[0], max(1, nbytes // len(columns)))
                candidates.append((score, segrel, index, missing, nbytes))
        candidates.sort(key=lambda c: (-c[0], c[1].name, c[2]))
        admitted = 0
        admitted_bytes = 0
        declined = 0
        # Segments admitted during THIS pass: resident for compute, but
        # access-counted as misses (their transfer was paid this query).
        fresh: Set[SegmentKey] = set()
        for score, segrel, index, missing, nbytes in candidates:
            weight = policy.effective_accesses(missing[0][0]) * policy.popularity(
                segrel.name
            )
            threshold = self.min_admit_weight
            if self.amortize_admission:
                # scale-free: transfer and benefit are both linear in bytes
                threshold = max(threshold, self.cost.accesses_to_amortize(nbytes))
            if weight < threshold:
                declined += 1
                continue
            bundle_bytes = sum(
                segrel.segment_nbytes(column, index) for _, column in missing
            )
            if not cache.can_fit(bundle_bytes):
                cap = cache.effective_capacity_bytes
                headroom = (
                    cap - cache.resident_bytes if cap is not None else bundle_bytes
                )
                victims = policy.choose_victims(
                    bundle_bytes - max(0, headroom),
                    score,
                    cache.resident_items(),
                    protect=protect,
                )
                if victims is None:
                    declined += 1
                    continue
                for victim in victims:
                    policy.note_evicted(victim)
                    cache.evict(victim)
            placed = []
            for key, column in missing:
                if cache.admit(key, segrel.column_slice(column, index)):
                    policy.note_admitted(key)
                    placed.append(key)
                else:
                    # partial bundles are worthless: roll back and stay cold
                    for done in placed:
                        policy.note_evicted(done)
                        cache.evict(done)
                    placed = []
                    declined += 1
                    break
            if placed:
                protect.update(placed)
                fresh.update(placed)
                admitted += len(placed)
                admitted_bytes += sum(cache._resident[key].nbytes for key in placed)
        evicted = cache.evictions - before_evicted
        accounting = {
            "admitted": float(admitted),
            "admitted_bytes": float(admitted_bytes),
            "evicted": float(evicted),
            "declined": float(declined),
        }
        if session is not None:
            with session.span(
                f"tier:placement:{op}",
                category="tier",
                tick=policy.tick,
                resident_bytes=cache.resident_bytes,
                **{k: v for k, v in accounting.items()},
            ):
                pass
            if admitted:
                session.count("tier.admissions", admitted)
                session.count("tier.admitted_bytes", admitted_bytes)
            if evicted:
                session.count("tier.evictions", evicted)
            if declined:
                session.count("tier.declined", declined)
            session.metrics.record_max(
                "tier.resident_bytes_peak", cache.resident_bytes
            )
        return accounting, fresh

    def _split(
        self,
        segrel: SegmentedRelation,
        columns: Sequence[str],
        fresh: Set[SegmentKey],
    ) -> Tuple[Set[int], int, int]:
        """Hot segment indices plus (hot_rows, cold_rows) for *columns*.

        A range is hot when all its columns are resident; it is counted
        as a cache *hit* only when none of them was admitted in this
        operator's own placement pass (*fresh*) — first-touch data runs
        on the GPU but its bytes were shipped this query.
        """
        hot: Set[int] = set()
        hot_rows = cold_rows = 0
        for index in range(segrel.num_segments):
            start, stop = segrel.row_range(index)
            nbytes = segrel.range_nbytes(columns, index)
            keys = segrel.keys_for(columns, index)
            if all(self.cache.is_resident(key) for key in keys):
                hot.add(index)
                hot_rows += stop - start
                hit = not any(key in fresh for key in keys)
                self.cache.record_access(hit, nbytes)
            else:
                cold_rows += stop - start
                self.cache.record_access(False, nbytes)
        return hot, hot_rows, cold_rows

    def _count_build_residency(
        self,
        segrel: SegmentedRelation,
        columns: Sequence[str],
        fresh: Set[SegmentKey],
    ) -> int:
        """Resident bytes of the build side (access-counted)."""
        resident = 0
        for index in range(segrel.num_segments):
            for column in columns:
                key = segrel.segment_key(column, index)
                nbytes = segrel.segment_nbytes(column, index)
                if self.cache.is_resident(key):
                    resident += nbytes
                    self.cache.record_access(key not in fresh, nbytes)
                else:
                    self.cache.record_access(False, nbytes)
        return resident

    def _segment_array(
        self, segrel: SegmentedRelation, column: str, index: int, hot: bool
    ) -> np.ndarray:
        """One segment's data — from the device cache when resident."""
        if hot:
            data = self.cache.get(segrel.segment_key(column, index))
            if data is not None:
                return data
        return segrel.column_slice(column, index)

    def _wire_pool_sink(self, session: Optional[TraceSession]) -> None:
        # The cache's private DeviceMemory predates any session, so its
        # pool sink is wired per operator call — before the placement
        # pass, so first-call admissions show up as pool.* metrics
        # alongside the tier.* counters.
        if session is not None and self.cache.memory.pool is not None:
            self.cache.memory.pool.sink = session

    def _fault_contexts(
        self,
        session: Optional[TraceSession],
        fault_plan,
        seed: Optional[int],
    ) -> Tuple[GPUContext, GPUContext]:
        # Capacity pressure is modeled as cache shrinkage (graceful
        # demotion), not as context-memory enforcement; kernel-fault
        # injection is kept so tier kernels retry like everything else.
        plan = fault_plan.without_capacity() if fault_plan is not None else None
        gpu = GPUContext(
            device=self.device, trace=session, seed=seed,
            fault_plan=plan, fault_site="tier-gpu",
        )
        cpu = GPUContext(
            device=self.cpu_device, trace=session, seed=seed,
            fault_plan=plan, fault_site="tier-cpu",
        )
        return gpu, cpu

    # -- join ---------------------------------------------------------------

    def run_join(
        self,
        left: Relation,
        right: Relation,
        config: Optional[JoinConfig] = None,
        session: Optional[TraceSession] = None,
        fault_plan=None,
        seed: Optional[int] = None,
    ) -> Optional[TieredOpResult]:
        """Tier-split inner join (left = build, right = probe).

        Returns ``None`` when either side is not under tier management
        (the executor falls back to the single-device path).  The output
        relation is in canonical s-major match order — identical for
        every placement, and exactly the order of
        :func:`~repro.relational.validation.reference_join`.
        """
        segR = self.segmented(left)
        segS = self.segmented(right)
        if segR is None or segS is None:
            return None
        config = config or JoinConfig()
        if session is None:
            session = current_session()
        self._wire_pool_sink(session)
        if fault_plan is not None and fault_plan.capacity_frac is not None:
            self.apply_capacity_pressure(fault_plan.capacity_frac, session)
        elif self.cache.pressure_capacity_bytes is not None:
            # capacity pressure is a transient fault: a fault-free run
            # lifts it so the cache can re-warm
            self.apply_capacity_pressure(None, session)
        r_cols = left.column_names
        s_cols = right.column_names
        placement, fresh = self._place(
            [(segR, r_cols), (segS, s_cols)], session, "join"
        )
        hot, hot_rows, cold_rows = self._split(segS, s_cols, fresh)
        r_resident = self._count_build_residency(segR, r_cols, fresh)
        r_missing = left.total_bytes - r_resident

        unique = config.unique_build_keys
        if unique is None:
            unique = detect_unique_keys(left.key_values)
        r_keys = left.key_values
        # Hoisted build-side sort; per segment this is exactly
        # joins.matching.match_positions, so concatenating per-segment
        # pairs in segment order reproduces the global s-major match
        # order bit-for-bit regardless of placement.
        order = stable_key_order(r_keys)
        sorted_keys = r_keys[order]
        parts_r: List[np.ndarray] = []
        parts_s: List[np.ndarray] = []
        hot_matches = cold_matches = 0
        for index in range(segS.num_segments):
            start, _ = segS.row_range(index)
            seg_keys = self._segment_array(segS, right.key, index, index in hot)
            if sorted_keys.size == 0:
                continue
            lo = np.searchsorted(sorted_keys, seg_keys, side="left")
            if unique:
                clipped = np.minimum(lo, sorted_keys.size - 1)
                hi = lo + (sorted_keys[clipped] == seg_keys).astype(lo.dtype)
            else:
                hi = np.searchsorted(sorted_keys, seg_keys, side="right")
            sorted_pos, s_pos = expand_bounds(lo, hi)
            if index in hot:
                hot_matches += sorted_pos.size
            else:
                cold_matches += sorted_pos.size
            parts_r.append(order[sorted_pos])
            parts_s.append(s_pos + start)
        empty = np.empty(0, dtype=np.int64)
        r_idx = np.concatenate(parts_r) if parts_r else empty
        s_idx = np.concatenate(parts_s) if parts_s else empty
        output = _materialize_join(left, right, r_idx, s_idx, config.output_name)

        matches = int(r_idx.size)
        out_bytes = output.total_bytes
        hot_out_bytes = int(out_bytes * hot_matches / matches) if matches else 0
        mixed = hot_rows > 0 and cold_rows > 0
        gpu_ctx, cpu_ctx = self._fault_contexts(session, fault_plan, seed)
        admitted_bytes = int(placement["admitted_bytes"])
        if admitted_bytes:
            gpu_ctx.submit(
                KernelStats(
                    name="tier_admit",
                    launches=max(1, int(placement["admitted"])),
                    host_transfer_bytes=admitted_bytes,
                ),
                phase="tier-admit",
            )
        r_key_bytes = int(r_keys.nbytes)
        r_row_bytes = max(1, left.total_bytes // max(1, left.num_rows))
        if hot_rows:
            gpu_ctx.submit(
                KernelStats(
                    name="tier_build",
                    items=left.num_rows,
                    seq_read_bytes=left.total_bytes,
                    seq_write_bytes=2 * r_key_bytes,
                    atomic_ops=left.num_rows,
                    host_transfer_bytes=r_missing,
                ),
                phase="tier-gpu",
            )
            probe_stats = []
            for index in sorted(hot):
                start, stop = segS.row_range(index)
                probe_stats.append(
                    KernelStats(
                        name="tier_probe",
                        items=stop - start,
                        seq_read_bytes=segS.range_nbytes(s_cols, index),
                    )
                )
            gpu_ctx.submit_many(probe_stats, phase="tier-gpu")
            gpu_ctx.submit(
                KernelStats(
                    name="tier_materialize",
                    items=hot_matches,
                    seq_read_bytes=hot_matches * r_row_bytes,
                    seq_write_bytes=hot_out_bytes,
                ),
                phase="tier-gpu",
            )
        if cold_rows:
            cpu_ctx.submit(
                KernelStats(
                    name="tier_build",
                    items=left.num_rows,
                    seq_read_bytes=left.total_bytes,
                    seq_write_bytes=2 * r_key_bytes,
                    atomic_ops=left.num_rows,
                ),
                phase="tier-cpu",
            )
            cold_bytes = sum(
                segS.range_nbytes(s_cols, index)
                for index in range(segS.num_segments)
                if index not in hot
            )
            cpu_ctx.submit(
                KernelStats(
                    name="tier_probe",
                    items=cold_rows,
                    seq_read_bytes=cold_bytes,
                ),
                phase="tier-cpu",
            )
            cpu_ctx.submit(
                KernelStats(
                    name="tier_materialize",
                    items=cold_matches,
                    seq_read_bytes=cold_matches * r_row_bytes,
                    seq_write_bytes=out_bytes - hot_out_bytes,
                ),
                phase="tier-cpu",
            )
        gpu_s = gpu_ctx.elapsed_seconds
        cpu_s = cpu_ctx.elapsed_seconds
        merge_s = 0.0
        if mixed:
            # The smaller (cold/CPU) partial crosses the interconnect and
            # the partitions are stitched at device bandwidth — shipping
            # the hot partition *down* would put the bulk of the output
            # on the slow path.
            merge_s = gpu_ctx.submit(
                KernelStats(
                    name="tier_result_transfer",
                    launches=1,
                    host_transfer_bytes=out_bytes - hot_out_bytes,
                ),
                phase="tier-merge",
            )
            merge_s += gpu_ctx.submit(
                KernelStats(
                    name="tier_merge",
                    items=matches,
                    seq_read_bytes=out_bytes,
                    seq_write_bytes=out_bytes,
                ),
                phase="tier-merge",
            )
        seconds = max(gpu_s, cpu_s) + merge_s
        extras = {
            "tier_gpu_s": gpu_s,
            "tier_cpu_s": cpu_s,
            "tier_merge_s": merge_s,
            "tier_hot_rows": float(hot_rows),
            "tier_cold_rows": float(cold_rows),
            "tier_admitted_bytes": float(admitted_bytes),
            "tier_hit_ratio": self.cache.hit_ratio,
        }
        self._note_op(session, hot_rows, cold_rows)
        return TieredOpResult(
            output=output,
            seconds=seconds,
            rows=matches,
            hot_segments=len(hot),
            cold_segments=segS.num_segments - len(hot),
            extras=extras,
        )

    # -- group-by ------------------------------------------------------------

    def run_group_by(
        self,
        child: Relation,
        group_column: str,
        aggregates: List[AggSpec],
        session: Optional[TraceSession] = None,
        fault_plan=None,
        seed: Optional[int] = None,
    ) -> Optional[TieredOpResult]:
        """Tier-split grouped aggregation over a managed base relation.

        Hot row ranges fold on the GPU, cold ranges on the CPU; the
        exact partial aggregates merge by group key into output
        bit-identical to the monolithic path for every placement.
        """
        segrel = self.segmented(child)
        if segrel is None:
            return None
        if session is None:
            session = current_session()
        self._wire_pool_sink(session)
        if fault_plan is not None and fault_plan.capacity_frac is not None:
            self.apply_capacity_pressure(fault_plan.capacity_frac, session)
        elif self.cache.pressure_capacity_bytes is not None:
            # capacity pressure is a transient fault: a fault-free run
            # lifts it so the cache can re-warm
            self.apply_capacity_pressure(None, session)
        needed: List[str] = [group_column]
        for spec in aggregates:
            if spec.op != "count" and spec.column not in needed:
                needed.append(spec.column)
        placement, fresh = self._place([(segrel, needed)], session, "group-by")
        hot, hot_rows, cold_rows = self._split(segrel, needed, fresh)

        def tier_arrays(indices: Sequence[int], is_hot: bool):
            keys = [
                self._segment_array(segrel, group_column, i, is_hot)
                for i in indices
            ]
            values = {
                column: [
                    self._segment_array(segrel, column, i, is_hot)
                    for i in indices
                ]
                for column in needed
                if column != group_column
            }
            key_arr = (
                np.concatenate(keys)
                if keys
                else child.column(group_column)[:0]
            )
            value_arrs = {
                column: (
                    np.concatenate(parts) if parts else child.column(column)[:0]
                )
                for column, parts in values.items()
            }
            return key_arr, value_arrs

        hot_idx = sorted(hot)
        cold_idx = [i for i in range(segrel.num_segments) if i not in hot]
        hot_partial = cold_partial = None
        if hot_rows:
            hot_partial = _partial_aggregate(*tier_arrays(hot_idx, True), aggregates)
        if cold_rows:
            cold_partial = _partial_aggregate(*tier_arrays(cold_idx, False), aggregates)
        merged = _merge_partials(hot_partial, cold_partial, aggregates)
        output = _finalize_partial(merged, aggregates)
        groups = int(output["group_key"].size)

        mixed = hot_rows > 0 and cold_rows > 0
        gpu_ctx, cpu_ctx = self._fault_contexts(session, fault_plan, seed)
        admitted_bytes = int(placement["admitted_bytes"])
        if admitted_bytes:
            gpu_ctx.submit(
                KernelStats(
                    name="tier_admit",
                    launches=max(1, int(placement["admitted"])),
                    host_transfer_bytes=admitted_bytes,
                ),
                phase="tier-admit",
            )
        partial_bytes = 8 * (1 + len(aggregates))
        if hot_rows:
            hot_bytes = sum(segS_bytes for segS_bytes in (
                segrel.range_nbytes(needed, i) for i in hot_idx
            ))
            hot_groups = int(hot_partial["keys"].size)
            gpu_ctx.submit(
                KernelStats(
                    name="tier_fold",
                    items=hot_rows,
                    seq_read_bytes=hot_bytes,
                    seq_write_bytes=hot_groups * partial_bytes,
                    atomic_ops=hot_rows,
                ),
                phase="tier-gpu",
            )
        if cold_rows:
            cold_bytes = sum(segrel.range_nbytes(needed, i) for i in cold_idx)
            cold_groups = int(cold_partial["keys"].size)
            cpu_ctx.submit(
                KernelStats(
                    name="tier_fold",
                    items=cold_rows,
                    seq_read_bytes=cold_bytes,
                    seq_write_bytes=cold_groups * partial_bytes,
                ),
                phase="tier-cpu",
            )
        gpu_s = gpu_ctx.elapsed_seconds
        cpu_s = cpu_ctx.elapsed_seconds
        merge_s = 0.0
        if mixed:
            cold_groups = int(cold_partial["keys"].size)
            merge_s = gpu_ctx.submit(
                KernelStats(
                    name="tier_result_transfer",
                    launches=1,
                    host_transfer_bytes=cold_groups * partial_bytes,
                ),
                phase="tier-merge",
            )
            merge_s += gpu_ctx.submit(
                KernelStats(
                    name="tier_merge",
                    items=groups,
                    seq_read_bytes=2 * groups * partial_bytes,
                    seq_write_bytes=groups * partial_bytes,
                ),
                phase="tier-merge",
            )
        seconds = max(gpu_s, cpu_s) + merge_s
        extras = {
            "tier_gpu_s": gpu_s,
            "tier_cpu_s": cpu_s,
            "tier_merge_s": merge_s,
            "tier_hot_rows": float(hot_rows),
            "tier_cold_rows": float(cold_rows),
            "tier_admitted_bytes": float(admitted_bytes),
            "tier_hit_ratio": self.cache.hit_ratio,
        }
        self._note_op(session, hot_rows, cold_rows)
        return TieredOpResult(
            output=output,
            seconds=seconds,
            rows=groups,
            hot_segments=len(hot),
            cold_segments=segrel.num_segments - len(hot),
            extras=extras,
        )

    def _note_op(
        self, session: Optional[TraceSession], hot_rows: int, cold_rows: int
    ) -> None:
        if session is None:
            return
        session.count("tier.ops")
        if hot_rows:
            session.count("tier.gpu_rows", hot_rows)
        if cold_rows:
            session.count("tier.cpu_rows", cold_rows)
        session.count("tier.hits", 0)  # ensure the counter exists in reports
        ratio_pct = round(self.cache.hit_ratio * 100.0, 3)
        session.metrics.record_max("tier.hit_ratio_pct_peak", ratio_pct)

    def fork_cold(self) -> "TieredRuntime":
        """A placement-independence probe: same segmentation, empty cache.

        The serving layer's cache-insert verifier re-executes a query on
        a cold fork; tiered outputs are placement-independent, so any
        mismatch means corruption, not ordering.
        """
        return TieredRuntime(
            device=self.device,
            cpu_device=self.cpu_device,
            segment_rows=self.segment_rows,
            capacity_bytes=self.capacity_bytes,
            auto_register=True,
            min_admit_weight=self.min_admit_weight,
        )


# -- pure helpers ------------------------------------------------------------


def _scan_relations(plan) -> List[Relation]:
    from ..query.plan import Aggregate, Join, Project, Scan

    found: List[Relation] = []

    def walk(node):
        if isinstance(node, Scan):
            found.append(node.relation)
        elif isinstance(node, Project):
            walk(node.child)
        elif isinstance(node, Join):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Aggregate):
            walk(node.child)

    walk(plan)
    return found


def _materialize_join(
    left: Relation,
    right: Relation,
    r_idx: np.ndarray,
    s_idx: np.ndarray,
    output_name: str,
) -> Relation:
    """Reference-schema join output: key, R payloads, S payloads (_s)."""
    columns = [("key", left.key_values[r_idx])]
    for name, array in left.payload_columns().items():
        columns.append((name, array[r_idx]))
    taken = {name for name, _ in columns}
    for name, array in right.payload_columns().items():
        out_name = name if name not in taken else f"{name}_s"
        columns.append((out_name, array[s_idx]))
        taken.add(out_name)
    return Relation(columns, key="key", name=output_name)


def _partial_aggregate(
    keys: np.ndarray,
    values: Dict[str, np.ndarray],
    aggregates: List[AggSpec],
) -> Dict[str, np.ndarray]:
    """Exact partial aggregates of one tier's rows, keyed by group key.

    Sums ride the same float64-bincount path as ``segmented_aggregate``
    (exact for the integer-valued columns the library supports, so the
    int64 cast is lossless) and are merged as int64 — which is why the
    merged result is bit-identical to the monolithic fold.
    """
    group_keys, inverse = group_identify(keys)
    n = int(group_keys.size)
    partial: Dict[str, np.ndarray] = {
        "keys": group_keys,
        "counts": np.bincount(inverse, minlength=n).astype(np.int64),
    }
    for spec in aggregates:
        if spec.op == "count":
            continue
        data = values[spec.column]
        if spec.op in ("sum", "mean"):
            name = f"sum:{spec.column}"
            if name not in partial:
                partial[name] = np.bincount(
                    inverse, weights=data.astype(np.float64), minlength=n
                ).astype(np.int64)
        elif spec.op in ("min", "max"):
            reducer = np.minimum if spec.op == "min" else np.maximum
            fill = (
                np.iinfo(np.int64).max
                if spec.op == "min"
                else np.iinfo(np.int64).min
            )
            out = np.full(n, fill, dtype=np.int64)
            reducer.at(out, inverse, data.astype(np.int64))
            partial[f"{spec.op}:{spec.column}"] = out
    return partial


def _merge_partials(
    a: Optional[Dict[str, np.ndarray]],
    b: Optional[Dict[str, np.ndarray]],
    aggregates: List[AggSpec],
) -> Dict[str, np.ndarray]:
    """Merge two per-tier partials by group key (either may be None)."""
    if a is None and b is None:
        raise ValueError("both tiers empty: nothing to aggregate")
    if a is None:
        return b  # type: ignore[return-value]
    if b is None:
        return a
    merged_keys = distinct_sorted(np.concatenate([a["keys"], b["keys"]]))
    pos_a = np.searchsorted(merged_keys, a["keys"])
    pos_b = np.searchsorted(merged_keys, b["keys"])
    n = int(merged_keys.size)
    merged: Dict[str, np.ndarray] = {"keys": merged_keys}

    def additive(name: str) -> np.ndarray:
        out = np.zeros(n, dtype=np.int64)
        np.add.at(out, pos_a, a[name])
        np.add.at(out, pos_b, b[name])
        return out

    merged["counts"] = additive("counts")
    for spec in aggregates:
        if spec.op == "count":
            continue
        if spec.op in ("sum", "mean"):
            name = f"sum:{spec.column}"
            if name not in merged:
                merged[name] = additive(name)
        elif spec.op in ("min", "max"):
            name = f"{spec.op}:{spec.column}"
            fill = (
                np.iinfo(np.int64).max
                if spec.op == "min"
                else np.iinfo(np.int64).min
            )
            side_a = np.full(n, fill, dtype=np.int64)
            side_a[pos_a] = a[name]
            side_b = np.full(n, fill, dtype=np.int64)
            side_b[pos_b] = b[name]
            reducer = np.minimum if spec.op == "min" else np.maximum
            merged[name] = reducer(side_a, side_b)
    return merged


def _finalize_partial(
    partial: Dict[str, np.ndarray], aggregates: List[AggSpec]
) -> "OrderedDict[str, np.ndarray]":
    """Partial -> the executor's output schema (same dtypes as plain)."""
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    out["group_key"] = partial["keys"]
    counts = partial["counts"]
    for spec in aggregates:
        if spec.op == "count":
            out[spec.output_name] = counts
        elif spec.op == "sum":
            out[spec.output_name] = partial[f"sum:{spec.column}"]
        elif spec.op == "mean":
            out[spec.output_name] = (
                partial[f"sum:{spec.column}"] / np.maximum(counts, 1)
            )
        else:
            out[spec.output_name] = partial[f"{spec.op}:{spec.column}"]
    return out
