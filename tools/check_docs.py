#!/usr/bin/env python
"""Markdown link checker for the repo's docs (stdlib only).

Checks every ``[text](target)`` / ``![alt](target)`` link in the given
markdown files:

* relative file links must point at an existing file or directory
  (resolved against the linking file's directory);
* anchor links (``#section`` or ``file.md#section``) must match a
  heading in the target file, using GitHub's heading-slug rules
  (lowercase, punctuation stripped, spaces to hyphens, ``-N`` suffixes
  for duplicates);
* absolute URLs (http/https/mailto) are *not* fetched — CI must not
  depend on the network — but must at least parse (no spaces).

``--require file.md#anchor`` additionally asserts that a named section
exists — CI pins the sections other docs and tests point readers at, so
a heading rename that would orphan those references fails the build.

Exit status is the number of broken links (0 == all good).

Usage::

    python tools/check_docs.py README.md ARCHITECTURE.md DESIGN.md EXPERIMENTS.md
    python tools/check_docs.py README.md --require EXPERIMENTS.md#resilience-ext05
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: ``[text](target)`` with no nesting; images are the same with a ``!``.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+(?:\s+\"[^\"]*\")?)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def _strip_code_blocks(lines: List[str]) -> List[str]:
    """Blank out fenced code blocks and inline code spans."""
    out: List[str] = []
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else re.sub(r"`[^`]*`", "", line))
    return out


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor slug for one heading text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)            # unwrap code spans
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)  # drop punctuation
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(path: Path) -> List[str]:
    seen: Dict[str, int] = {}
    slugs: List[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slugs.append(github_slug(match.group(2), seen))
    return slugs


def extract_links(path: Path) -> List[Tuple[int, str]]:
    lines = path.read_text(encoding="utf-8").splitlines()
    links: List[Tuple[int, str]] = []
    for lineno, line in enumerate(_strip_code_blocks(lines), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1).split()[0].strip()  # drop title strings
            links.append((lineno, target))
    return links


def check_file(path: Path, slug_cache: Dict[Path, List[str]]) -> List[str]:
    errors: List[str] = []
    for lineno, target in extract_links(path):
        where = f"{path}:{lineno}"
        if target.startswith(EXTERNAL_SCHEMES):
            continue  # not fetched; LINK_RE already rejected embedded spaces
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            errors.append(f"{where}: broken link {target!r} (no such file {base!r})")
            continue
        if anchor:
            if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                errors.append(
                    f"{where}: anchor {target!r} into non-markdown target"
                )
                continue
            if dest not in slug_cache:
                slug_cache[dest] = heading_slugs(dest)
            if anchor.lower() not in slug_cache[dest]:
                errors.append(
                    f"{where}: anchor {target!r} not found; "
                    f"{dest.name} has {slug_cache[dest]}"
                )
    return errors


def check_required_anchor(
    requirement: str, slug_cache: Dict[Path, List[str]]
) -> List[str]:
    """``file.md#anchor`` must name an existing heading in that file."""
    base, _, anchor = requirement.partition("#")
    path = Path(base).resolve()
    if not path.exists():
        return [f"required section {requirement!r}: no such file {base!r}"]
    if not anchor:
        return [f"required section {requirement!r} has no #anchor part"]
    if path not in slug_cache:
        slug_cache[path] = heading_slugs(path)
    if anchor.lower() not in slug_cache[path]:
        return [
            f"required section {requirement!r} not found; "
            f"{path.name} has {slug_cache[path]}"
        ]
    return []


def main(argv: List[str]) -> int:
    required: List[str] = []
    positional: List[str] = []
    arguments = iter(argv)
    for argument in arguments:
        if argument == "--require":
            required.append(next(arguments, ""))
        else:
            positional.append(argument)
    files = [Path(arg) for arg in positional] or sorted(Path(".").glob("*.md"))
    slug_cache: Dict[Path, List[str]] = {}
    errors: List[str] = []
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file does not exist")
            continue
        errors.extend(check_file(path, slug_cache))
    for requirement in required:
        errors.extend(check_required_anchor(requirement, slug_cache))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(
            f"docs OK: {len(files)} files, all relative links and anchors "
            f"resolve"
            + (f", {len(required)} required sections present" if required else "")
        )
    return len(errors)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
