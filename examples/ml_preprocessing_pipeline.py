"""ML feature-assembly pipeline: the paper's motivating workload.

The introduction motivates GPU-resident joins with in-database machine
learning: feature augmentation joins tables *without filters*, so the
match ratio is 100% and every payload column materializes — exactly the
regime where materialization dominates and GFTR pays off (Figure 1).

This example assembles a training matrix by joining a fact table of
samples against two feature tables, comparing the GFUR baseline (PHJ-UM)
with the paper's PHJ-OM, and showing the phase breakdown that explains
the gap.

Run: ``python examples/ml_preprocessing_pipeline.py``
"""

import numpy as np

from repro import (
    JoinConfig,
    PartitionedHashJoin,
    PartitionedHashJoinUM,
    Relation,
    scaled_device,
    A100,
)

# Scale the device geometry with the workload so the run reproduces the
# paper-scale regime at laptop size (see DESIGN.md).
SCALE = 2.0 ** -9
DEVICE = scaled_device(A100, SCALE)
CONFIG = JoinConfig(
    tuples_per_partition=max(32, int(4096 * SCALE)),
    bucket_tuples=max(32, int(4096 * SCALE)),
)

rng = np.random.default_rng(0)
num_entities = 1 << 17
num_samples = 1 << 18

# Feature table: one row per entity, four dense feature columns.
features = Relation.from_key_payloads(
    rng.permutation(num_entities).astype(np.int32),
    [rng.integers(0, 1 << 20, num_entities).astype(np.int32) for _ in range(4)],
    payload_prefix="f",
    name="entity_features",
)

# Samples: every sample references an entity (100% match — no filter),
# and carries a label plus a timestamp.
samples = Relation.from_key_payloads(
    rng.integers(0, num_entities, num_samples).astype(np.int32),
    [
        rng.integers(0, 2, num_samples).astype(np.int32),        # label
        rng.integers(0, 10 ** 9, num_samples).astype(np.int32),  # ts
    ],
    payload_prefix="s",
    name="samples",
)

print("Feature augmentation join (100% match ratio, 6 payload columns)")
print(f"  features: {features.num_rows} rows, samples: {samples.num_rows} rows\n")

results = {}
for name, algorithm in (
    ("PHJ-UM (GFUR baseline)", PartitionedHashJoinUM(CONFIG)),
    ("PHJ-OM (GFTR, ours)", PartitionedHashJoin(CONFIG)),
):
    result = algorithm.join(features, samples, device=DEVICE, seed=1)
    results[name] = result
    print(f"{name}")
    for phase, seconds in result.phase_seconds.items():
        share = result.phase_fraction(phase)
        print(f"  {phase:12s} {seconds * 1e3:8.3f} ms  ({share:5.1%})")
    print(f"  {'total':12s} {result.total_seconds * 1e3:8.3f} ms\n")

baseline, optimized = results.values()
assert optimized.output.equals_unordered(baseline.output)
print(
    f"GFTR speedup: {baseline.total_seconds / optimized.total_seconds:.2f}x "
    f"(paper reports up to 2.3x for this regime)"
)
mat_share = baseline.phase_fraction("materialize")
print(
    f"Materialization consumed {mat_share:.0%} of the GFUR baseline — the "
    f"bottleneck Figure 1 identifies."
)

# The assembled matrix is a real relation, ready to feed a model.
matrix = optimized.output
feature_columns = [c for c in matrix.column_names if c.startswith("f")]
print(f"\nTraining matrix: {matrix.num_rows} rows, features {feature_columns}")
