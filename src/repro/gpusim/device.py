"""Simulated device descriptions.

The paper evaluates on two Ampere GPUs (Table 3) and a NUMA CPU server
(the Balkesen et al. radix-join baseline).  A :class:`DeviceSpec` captures
the parameters the cost model needs: memory bandwidth, cache sizes, the
number of execution units, and a handful of calibration constants that
convert measured memory traffic into simulated seconds (see
``repro.gpusim.costmodel`` for how each constant is used and how it was
calibrated against the paper's published counters).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Size of a DRAM sector (the granularity of GPU memory transactions).
SECTOR_BYTES = 32

#: Size of an L1/L2 cache line (four sectors on Ampere).
CACHE_LINE_BYTES = 128

#: Number of threads in a warp.
WARP_SIZE = 32


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated execution device.

    Attributes mirror Table 3 of the paper plus the calibration constants
    used by :class:`repro.gpusim.costmodel.CostModel`.
    """

    name: str
    kind: str  # "gpu" or "cpu"
    num_execution_units: int  # SMs for GPUs, cores for CPUs
    clock_hz: float
    l1_bytes: int
    shared_mem_bytes: int  # max shared memory per SM (0 for CPUs)
    l2_bytes: int
    global_mem_bytes: int
    mem_bandwidth: float  # bytes / second, theoretical peak

    # --- calibration constants -------------------------------------------
    #: Fraction of peak bandwidth achieved by latency-bound random DRAM
    #: traffic (uncoalesced sector fetches).  Calibrated so the unclustered
    #: vs. clustered GATHER gap matches Table 4 (~8.5x) and the Figure 7
    #: sort-vs-unclustered crossover sits on the paper's side.
    random_derating: float = 0.30
    #: Bandwidth multiplier for traffic served from L2 instead of DRAM.
    l2_bandwidth_factor: float = 3.0
    #: Fixed cost of launching one kernel.
    kernel_launch_overhead_s: float = 5e-6
    #: Cost of one conflicted atomic update (applied on top of traffic).
    atomic_conflict_cost_s: float = 2.0e-9
    #: Per-item instruction cost charged per execution unit.  Dominant for
    #: CPUs; a small correction for GPUs.
    per_item_cost_s: float = 2.0e-12
    #: Effective host<->device interconnect bandwidth (PCIe 4.0 x16 for
    #: the GPUs; irrelevant for the CPU baseline).  Used by out-of-core
    #: joins that stage chunks through host memory.
    interconnect_bandwidth: float = 25e9

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu"

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Human-readable one-line summary of the device."""
        bw_gbs = self.mem_bandwidth / 1e9
        return (
            f"{self.name} ({self.kind}, {self.num_execution_units} units, "
            f"{bw_gbs:.0f} GB/s, L2 {self.l2_bytes // (1024 * 1024)} MB)"
        )


#: NVIDIA A100 40 GB (Table 3, right column).
A100 = DeviceSpec(
    name="A100",
    kind="gpu",
    num_execution_units=108,
    clock_hz=1.095e9,
    l1_bytes=192 * 1024,
    shared_mem_bytes=164 * 1024,
    l2_bytes=40 * 1024 * 1024,
    global_mem_bytes=40 * 1024 ** 3,
    mem_bandwidth=1555e9,
)

#: NVIDIA GeForce RTX 3090 (Table 3, left column).
RTX3090 = DeviceSpec(
    name="RTX3090",
    kind="gpu",
    num_execution_units=82,
    clock_hz=1.395e9,
    l1_bytes=128 * 1024,
    shared_mem_bytes=100 * 1024,
    l2_bytes=6 * 1024 * 1024,
    global_mem_bytes=24 * 1024 ** 3,
    mem_bandwidth=936e9,
)

#: Two-socket NUMA CPU server in the spirit of the Balkesen et al. baseline.
#: The per-item cost dominates; it is calibrated so the GPU joins are
#: 20-35x faster than the CPU radix join (Figure 8).
CPU_SERVER = DeviceSpec(
    name="CPU-2S-NUMA",
    kind="cpu",
    num_execution_units=64,
    clock_hz=2.5e9,
    l1_bytes=32 * 1024,
    shared_mem_bytes=0,
    l2_bytes=256 * 1024 * 1024,  # aggregate LLC across sockets
    global_mem_bytes=512 * 1024 ** 3,
    mem_bandwidth=100e9,
    random_derating=0.15,
    l2_bandwidth_factor=2.0,
    kernel_launch_overhead_s=0.0,
    atomic_conflict_cost_s=8.0e-9,
    per_item_cost_s=2.8e-9,
)

#: Registry of the built-in devices keyed by name.
BUILTIN_DEVICES = {spec.name: spec for spec in (A100, RTX3090, CPU_SERVER)}


def scaled_device(spec: DeviceSpec, scale: float) -> DeviceSpec:
    """Shrink a device's *geometry* by ``scale`` for scaled-down workloads.

    The paper's effects are regime effects: an unclustered gather is slow
    *when its footprint exceeds L2*; a partition pass count depends on
    *how many partitions fit shared memory*.  Running the evaluation at
    1/128th of the paper's 2^27-tuple workloads therefore also shrinks
    the caches, shared memory, device memory, and the per-kernel launch
    overhead by the same factor, so every crossover sits where it does at
    paper scale.  Bandwidth and per-item costs are intensive quantities
    and stay unchanged.  ``scale=1`` returns the spec untouched.
    """
    if scale <= 0 or scale > 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    if scale == 1.0:
        return spec
    return spec.with_overrides(
        name=f"{spec.name}@{scale:g}",
        l1_bytes=max(1024, int(spec.l1_bytes * scale)),
        shared_mem_bytes=max(1024, int(spec.shared_mem_bytes * scale)),
        l2_bytes=max(4096, int(spec.l2_bytes * scale)),
        global_mem_bytes=max(1 << 20, int(spec.global_mem_bytes * scale)),
        kernel_launch_overhead_s=spec.kernel_launch_overhead_s * scale,
    )


def get_device(name: str) -> DeviceSpec:
    """Look up a built-in device spec by name.

    Raises ``KeyError`` with the list of known devices if *name* is unknown.
    """
    try:
        return BUILTIN_DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_DEVICES))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
