"""ext03: cross-device validation (A100 vs RTX 3090).

The paper evaluates on both GPUs and observes (Section 5.2.1) that "a
larger GPU like the A100 with a much larger L2 cache and higher memory
bandwidth cannot alleviate the inefficiency of unclustered gathers" —
the GFTR advantage is architectural, not a quirk of one card.  This
experiment runs the wide-join comparison on both devices and checks:

* PHJ-OM wins on both;
* the GFTR speedup is at least as large on the RTX 3090 (smaller L2
  means unclustered gathers hurt *more*, cf. Figure 7's 2.2x vs 1.79x);
* absolute throughput is higher on the A100 (more bandwidth).
"""

from __future__ import annotations

from ...gpusim.device import A100, RTX3090
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup, run_algorithm

PAPER_ROWS = 1 << 26
ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext03",
        title="Cross-device validation: wide join on A100 vs RTX 3090 (ms)",
        headers=["device"] + list(ALGORITHMS) + ["phj_om_speedup"],
    )
    speedups = {}
    best_totals = {}
    for base_device in (A100, RTX3090):
        setup = make_setup(scale, device=base_device)
        spec = JoinWorkloadSpec(
            r_rows=setup.rows(PAPER_ROWS),
            s_rows=setup.rows(2 * PAPER_ROWS),
            r_payload_columns=2,
            s_payload_columns=2,
            seed=seed,
        )
        r, s = generate_join_workload(spec)
        times = {
            name: run_algorithm(name, r, s, setup).total_seconds * 1e3
            for name in ALGORITHMS
        }
        speedup = times["PHJ-UM"] / times["PHJ-OM"]
        speedups[base_device.name] = speedup
        best_totals[base_device.name] = min(times.values())
        result.add_row(base_device.name, *[times[a] for a in ALGORITHMS], speedup)
    result.findings["phj_om_wins_both_devices"] = float(
        all(s > 1.0 for s in speedups.values())
    )
    result.findings["rtx_speedup_at_least_a100"] = float(
        speedups["RTX3090"] >= speedups["A100"] * 0.95
    )
    result.findings["a100_faster_absolute"] = float(
        best_totals["A100"] <= best_totals["RTX3090"]
    )
    result.add_note(
        "paper: the A100's bigger L2 does not rescue unclustered gathers; "
        "the GFTR advantage holds on both architectures"
    )
    return result
