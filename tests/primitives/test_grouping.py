"""Oracle tests: sort-based group identification vs np.unique semantics.

The group-by variants and the join planner replaced their
``np.unique(..., return_inverse=True)`` hot paths with the sort-based
helpers in ``repro.primitives.grouping``.  These tests pin the helpers
to the ``np.unique`` contract — sorted ascending group keys, inverse
mapping with ``group_keys[inverse] == keys`` — including the empty,
all-equal and all-distinct edge cases, and check the contract end to
end through every group-by variant.
"""

import numpy as np
import pytest

from repro.aggregation import AggSpec, make_groupby_algorithm
from repro.primitives.grouping import (
    count_distinct,
    distinct_sorted,
    group_identify,
    groups_from_sorted,
    stable_key_order,
)

_RNG = np.random.default_rng(11)

CASES = {
    "empty": np.empty(0, dtype=np.int32),
    "single": np.array([5], dtype=np.int64),
    "all_equal": np.full(501, -3, dtype=np.int32),
    "all_distinct": _RNG.permutation(1000).astype(np.int32),
    "high_cardinality": _RNG.integers(-1000, 1000, 5000).astype(np.int32),
    "few_groups": _RNG.integers(0, 7, 5000).astype(np.int64),
    "presorted": np.sort(_RNG.integers(0, 100, 2000)).astype(np.int32),
    "int64_wide": _RNG.integers(-(1 << 40), 1 << 40, 3000),
    "uint32": _RNG.integers(0, 1 << 32, 3000, dtype=np.uint32),
}


@pytest.mark.parametrize("case", sorted(CASES), ids=str)
class TestGroupIdentify:
    def test_matches_np_unique(self, case):
        keys = CASES[case]
        expected_keys, expected_inverse = np.unique(keys, return_inverse=True)
        group_keys, inverse = group_identify(keys)
        assert np.array_equal(group_keys, expected_keys)
        assert group_keys.dtype == keys.dtype
        assert np.array_equal(inverse, expected_inverse)

    def test_inverse_reconstructs_keys(self, case):
        keys = CASES[case]
        group_keys, inverse = group_identify(keys)
        assert np.array_equal(group_keys[inverse], keys)

    def test_count_and_distinct(self, case):
        keys = CASES[case]
        assert count_distinct(keys) == np.unique(keys).size
        assert np.array_equal(distinct_sorted(keys), np.unique(keys))

    def test_groups_from_sorted(self, case):
        keys = np.sort(CASES[case])
        expected_keys, expected_inverse = np.unique(keys, return_inverse=True)
        group_keys, inverse = groups_from_sorted(keys)
        assert np.array_equal(group_keys, expected_keys)
        assert np.array_equal(inverse, expected_inverse)


def _near_permutation(n: int) -> np.ndarray:
    """min..max spans exactly n values but one is duplicated."""
    keys = _RNG.permutation(n).astype(np.int32)
    inner = 1 + int(np.flatnonzero((keys[1:-1] != 0) & (keys[1:-1] != n - 1))[0])
    keys[inner] = keys[0]  # duplicate; 0 and n-1 still present
    return keys


class TestStableKeyOrder:
    """Every tier returns np.argsort(keys, kind="stable") bit-identically."""

    @pytest.mark.parametrize(
        "dtype",
        [np.int8, np.uint8, np.int16, np.uint16, np.int32, np.uint32,
         np.int64, np.uint64],
    )
    def test_full_range(self, dtype):
        info = np.iinfo(dtype)
        keys = _RNG.integers(info.min, info.max, 4000, endpoint=True, dtype=dtype)
        assert np.array_equal(
            stable_key_order(keys), np.argsort(keys, kind="stable")
        )

    @pytest.mark.parametrize(
        "name,keys",
        [
            ("narrow_span", _RNG.integers(0, 200, 4000).astype(np.int32)),
            ("narrow_span_negative", (_RNG.integers(0, 200, 4000) - 100).astype(np.int32)),
            ("dense_permutation", _RNG.permutation(8192).astype(np.int32)),
            ("shifted_permutation", (_RNG.permutation(8192) - 4096).astype(np.int32)),
            ("permutation_int64", _RNG.permutation(8192).astype(np.int64)),
            ("int64_span32", _RNG.integers(-(1 << 30), 1 << 30, 4000)),
            ("uint64_span32", _RNG.integers(1 << 40, (1 << 40) + (1 << 31), 4000).astype(np.uint64)),
            # span == n (> 2^16) but with a duplicate: the histogram check
            # must reject the scatter tier or the order would be garbage
            ("near_permutation", _near_permutation(70000)),
            ("floats", _RNG.standard_normal(1000)),
            ("empty", np.empty(0, dtype=np.int32)),
            ("constant", np.full(777, 42, dtype=np.int32)),
        ],
        ids=str,
    )
    def test_tier_patterns(self, name, keys):
        assert np.array_equal(
            stable_key_order(keys), np.argsort(keys, kind="stable")
        )


@pytest.mark.parametrize("strategy", ["HASH-AGG", "SORT-AGG", "PART-AGG"])
@pytest.mark.parametrize("case", ["all_equal", "all_distinct", "high_cardinality"], ids=str)
def test_groupby_variants_emit_np_unique_key_order(strategy, case):
    """Each variant's output group keys follow np.unique order/values."""
    keys = CASES[case].astype(np.int32)
    values = {"v1": np.arange(keys.size, dtype=np.int64)}
    result = make_groupby_algorithm(strategy).group_by(
        keys, values, [AggSpec("v1", "count")], seed=0
    )
    assert np.array_equal(result.output["group_key"], np.unique(keys))
    assert int(result.output["count_v1"].sum()) == keys.size
