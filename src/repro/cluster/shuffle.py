"""Radix-partitioned shuffle: move columns between simulated devices.

The scale-out analogue of the paper's RADIX-PARTITION primitive: every
device hash-partitions its local block of rows by key into one bucket
per destination device (a stable single-pass scatter, charged to that
device's timeline like any other kernel), then the buckets cross the
interconnect with *exact* byte accounting per directed link.  Equal
keys always land on the same device — the property that makes sharded
joins and group-bys produce bit-identical results to their single-device
counterparts — and the partitioning is stable end to end (source blocks
are concatenated in device order, each bucket preserving local row
order), so even order-sensitive float accumulations reproduce exactly.

**Fault injection.**  The exchange is the cluster layer's link-failure
injection point: when the owning :class:`ClusterContext` carries a
:class:`~repro.faults.FaultPlan`, each directed link's bucket may fail
its delivery and be retransmitted whole inside
:meth:`ClusterContext.shuffle_step` — extending the drain and the
``fault_retransmit_*`` counters but never the routed rows, because the
bucket contents are host-resident until the step completes (the
shuffle *is* the superstep checkpoint the replay machinery restores
from).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from ..primitives.hashing import mix_hash
from ..relational.relation import Relation
from .context import ClusterContext, ClusterStepRecord


def device_assignments(keys: np.ndarray, num_devices: int) -> np.ndarray:
    """The destination device of each row, by mixed key hash.

    Deterministic and key-functional: equal keys always map to the same
    device, for any ``num_devices >= 1`` (not only powers of two).

    >>> import numpy as np
    >>> a = device_assignments(np.array([7, 9, 7, 9], dtype=np.int64), 4)
    >>> bool(a[0] == a[2]) and bool(a[1] == a[3])
    True
    >>> device_assignments(np.arange(5), 1).tolist()
    [0, 0, 0, 0, 0]
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if num_devices == 1:
        return np.zeros(np.asarray(keys).size, dtype=np.int64)
    return (mix_hash(np.asarray(keys)) % np.uint64(num_devices)).astype(np.int64)


def block_ranges(num_rows: int, num_devices: int) -> List[tuple]:
    """Contiguous ``[start, stop)`` row ranges of the initial placement.

    Inputs start block-partitioned across devices (the layout a loader
    naturally produces); ranges differ in size by at most one row.
    """
    bounds = np.linspace(0, num_rows, num_devices + 1).astype(np.int64)
    return [(int(bounds[d]), int(bounds[d + 1])) for d in range(num_devices)]


@dataclass
class ShuffleResult:
    """Exact accounting of one sharded exchange of a set of columns.

    ``matrix[src, dst]`` holds the bytes ``src`` emitted toward ``dst``
    (the diagonal is device-local and never crosses a link);
    ``shards[d]`` is the column set device ``d`` holds afterwards.
    """

    matrix: np.ndarray
    shards: List[Dict[str, np.ndarray]]
    seconds: float
    step: Optional[ClusterStepRecord] = None
    partition_step: Optional[ClusterStepRecord] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def emitted_bytes(self) -> np.ndarray:
        """Bytes each source device put on the interconnect (row sums)."""
        off = self.matrix.copy()
        np.fill_diagonal(off, 0)
        return off.sum(axis=1)

    @property
    def received_bytes(self) -> np.ndarray:
        """Bytes each destination device pulled off the wire (col sums)."""
        off = self.matrix.copy()
        np.fill_diagonal(off, 0)
        return off.sum(axis=0)


def _charge_partition_kernels(
    ctx: GPUContext,
    key_bytes: int,
    total_bytes: int,
    rows: int,
    num_devices: int,
    label: str,
) -> None:
    """Charge the local bucket-scatter of one device's block.

    One OneSweep-style pass, exactly like
    :func:`repro.primitives.radix_partition.radix_partition_pass`: a
    fused histogram read of the keys plus one read and one write of
    every column, with one atomic per destination bucket.
    """
    if rows == 0:
        return
    ctx.submit(
        KernelStats(
            name=f"shard_partition:{label}" if label else "shard_partition",
            items=rows,
            seq_read_bytes=key_bytes + total_bytes,
            seq_write_bytes=total_bytes,
            atomic_ops=num_devices,
        ),
        phase="shuffle",
    )


def shuffle_columns(
    cluster: ClusterContext,
    local_columns: List[Dict[str, np.ndarray]],
    key_column: str,
    label: str = "",
) -> ShuffleResult:
    """Exchange per-device column sets so equal keys co-locate.

    ``local_columns[d]`` is the column dict currently resident on device
    ``d`` (all arrays equally long).  Each device scatters its rows into
    per-destination buckets in a ``shuffle-partition`` compute step
    (charged to its timeline), then every off-diagonal bucket crosses
    the interconnect in one shuffle step.

    Returns a :class:`ShuffleResult` whose ``shards[d]`` concatenates the
    bucket-``d`` rows of every source device in device order (stable
    within each source), so the global relative order of equal-key rows
    is preserved.
    """
    n = cluster.num_devices
    if len(local_columns) != n:
        raise ValueError(
            f"expected {n} local column sets, got {len(local_columns)}"
        )
    names = list(local_columns[0]) if local_columns else []

    # Per-source bucket masks + local scatter kernels.
    buckets: List[List[Dict[str, np.ndarray]]] = []  # [src][dst] -> columns
    matrix = np.zeros((n, n), dtype=np.int64)

    with cluster.compute_step(
        f"shuffle-partition:{label}" if label else "shuffle-partition"
    ) as partition_step:
        for src, columns in enumerate(local_columns):
            keys = columns[key_column]
            assignment = device_assignments(keys, n)
            total_bytes = sum(int(a.nbytes) for a in columns.values())
            _charge_partition_kernels(
                partition_step.contexts[src],
                key_bytes=int(keys.nbytes),
                total_bytes=total_bytes,
                rows=int(keys.size),
                num_devices=n,
                label=label,
            )
            row = []
            for dst in range(n):
                mask = assignment == dst
                bucket = {name: columns[name][mask] for name in names}
                nbytes = sum(int(a.nbytes) for a in bucket.values())
                matrix[src, dst] = nbytes
                row.append(bucket)
            buckets.append(row)

    shuffle_step = cluster.shuffle_step(
        f"shuffle:{label}" if label else "shuffle", matrix, label=label or "shuffle"
    )

    shards: List[Dict[str, np.ndarray]] = []
    for dst in range(n):
        shard = {
            name: np.concatenate([buckets[src][dst][name] for src in range(n)])
            for name in names
        }
        shards.append(shard)
    return ShuffleResult(
        matrix=matrix,
        shards=shards,
        seconds=shuffle_step.seconds,
        step=shuffle_step,
        partition_step=partition_step,
    )


def shuffle_relation(
    cluster: ClusterContext,
    relation: Relation,
    label: str = "",
) -> ShuffleResult:
    """Shuffle a block-partitioned :class:`Relation` by its key column.

    The relation starts block-partitioned across the cluster's devices
    (see :func:`block_ranges`); afterwards device ``d`` holds exactly
    the rows whose key hashes to ``d``.  ``shards`` entries keep the
    relation's column names; rebuild per-device relations with
    :func:`shard_to_relation`.
    """
    ranges = block_ranges(relation.num_rows, cluster.num_devices)
    local = [
        {name: array[start:stop] for name, array in relation.columns().items()}
        for start, stop in ranges
    ]
    return shuffle_columns(cluster, local, relation.key, label=label)


def shard_to_relation(
    shard: Dict[str, np.ndarray], template: Relation, name: str = ""
) -> Relation:
    """Rebuild one device's shard as a Relation shaped like *template*."""
    return Relation(
        [(n, shard[n]) for n in template.column_names],
        key=template.key,
        name=name or template.name,
    )
