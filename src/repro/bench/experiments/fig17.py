"""Figure 17 + Table 6: joins extracted from TPC-H and TPC-DS.

Five joins from DuckDB query plans (J1: Q7, J2: Q18, J3: Q19, J4: DS
Q64, J5: DS Q95 self join), run in the ``mixed`` (4B keys, 8B non-keys)
and ``wide`` (all 8B) type variants.  Paper observations:

* *-OM win on the large PK-FK joins (J2, J4) in the mixed variant;
* small inputs (J3) favour unclustered gathers via L2;
* PHJ-OM performs consistently well everywhere, including the wide
  variant where SMJ-OM's extra sorting stops paying off.
"""

from __future__ import annotations

from ...workloads.tpch import TPC_JOINS, generate_tpc_join
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup, run_algorithm

ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0, variants=("mixed", "wide")) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="fig17",
        title="TPC-H / TPC-DS extracted joins (total ms)",
        headers=["variant", "join", "|R|", "|S|", "|T|"] + list(ALGORITHMS) + ["winner"],
    )
    winners = {}
    for variant in variants:
        for spec in TPC_JOINS:
            r, s = generate_tpc_join(spec, scale=scale, variant=variant, seed=seed)
            times = {}
            matches = None
            for name in ALGORITHMS:
                res = run_algorithm(name, r, s, setup)
                times[name] = res.total_seconds * 1e3
                matches = res.matches
            winner = min(times, key=times.get)
            winners[(variant, spec.join_id)] = winner
            result.add_row(
                variant, spec.join_id, r.num_rows, s.num_rows, matches,
                *[times[a] for a in ALGORITHMS], winner,
            )
    phj_om_wins = sum(1 for w in winners.values() if w == "PHJ-OM")
    result.findings["phj_om_win_fraction"] = phj_om_wins / len(winners)
    result.add_note(
        "paper: PHJ-OM consistently strong; J5 (self join) dominated by "
        "match finding where PHJ-UM ~ PHJ-OM"
    )
    return result
