"""Composite join/group-by keys via bit packing.

The algorithms in this library join and group on a single integer key
column (as in the paper).  Real queries often join or group on several
attributes at once; the standard trick — used by GPU engines for exactly
these kernels — is to pack the attributes into one wide integer.
:func:`pack_columns` derives minimal per-column bit widths and packs any
number of non-negative integer columns into one int64 key;
:class:`PackedKeyCodec` unpacks result keys back into attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import InvalidRelationError

#: Usable key bits (int64, sign bit reserved so keys stay non-negative).
MAX_PACKED_BITS = 63


@dataclass(frozen=True)
class PackedKeyCodec:
    """Bit layout of a packed composite key.

    Column 0 occupies the most significant bits, so packed keys sort in
    the same lexicographic order as the original column tuple — radix
    partitioning and sorting behave exactly as for natural keys.
    """

    bit_widths: Tuple[int, ...]

    @property
    def total_bits(self) -> int:
        return sum(self.bit_widths)

    @property
    def shifts(self) -> Tuple[int, ...]:
        """Left-shift of each column within the packed key."""
        shifts = []
        remaining = self.total_bits
        for width in self.bit_widths:
            remaining -= width
            shifts.append(remaining)
        return tuple(shifts)

    def pack(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """Pack value columns (validated against the layout)."""
        if len(columns) != len(self.bit_widths):
            raise InvalidRelationError(
                f"codec packs {len(self.bit_widths)} columns, got {len(columns)}"
            )
        packed = np.zeros(len(columns[0]), dtype=np.int64)
        for column, width, shift in zip(columns, self.bit_widths, self.shifts):
            values = np.asarray(column)
            if values.size and (values.min() < 0 or int(values.max()) >= 1 << width):
                raise InvalidRelationError(
                    f"values outside [0, 2^{width}) cannot be packed"
                )
            packed |= values.astype(np.int64) << shift
        return packed

    def unpack(self, packed: np.ndarray) -> List[np.ndarray]:
        """Recover the original columns from packed keys."""
        columns = []
        for width, shift in zip(self.bit_widths, self.shifts):
            mask = np.int64((1 << width) - 1)
            columns.append((packed >> np.int64(shift)) & mask)
        return columns


def _bits_needed(column: np.ndarray) -> int:
    if column.size == 0:
        return 1
    high = int(column.max())
    if int(column.min()) < 0:
        raise InvalidRelationError("packed key columns must be non-negative")
    return max(1, high.bit_length())


def pack_columns(
    columns: Sequence[np.ndarray],
) -> Tuple[np.ndarray, PackedKeyCodec]:
    """Pack several columns into one composite int64 key.

    Bit widths are derived from each column's maximum value; the total
    must fit :data:`MAX_PACKED_BITS`.  Returns the packed key column and
    the codec needed to unpack results.
    """
    if not columns:
        raise InvalidRelationError("pack_columns needs at least one column")
    widths = tuple(_bits_needed(np.asarray(c)) for c in columns)
    total = sum(widths)
    if total > MAX_PACKED_BITS:
        raise InvalidRelationError(
            f"composite key needs {total} bits; at most {MAX_PACKED_BITS} fit int64"
        )
    codec = PackedKeyCodec(widths)
    return codec.pack([np.asarray(c) for c in columns]), codec
