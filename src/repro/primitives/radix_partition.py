"""Stable RADIX-PARTITION primitive (Section 2.3 / 4.3 of the paper).

One invocation partitions key/value arrays on up to 8 radix bits (256
partitions — the Ampere limit the paper cites), storing partitions
consecutively with no fragmentation.  The partitioning is *stable*
(OneSweep radix-sort building block): equal digits preserve input order,
which is the property that makes the GFTR pattern correct — partitioning
``(key, col_1)`` and ``(key, col_2)`` yields mutually consistent layouts.

Multiple invocations compose LSD-style: after partitioning on bits
``[0, 8)`` and then ``[8, 16)``, tuples are grouped by their full 16-bit
digit, with partitions stored in ascending digit order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..gpusim.context import GPUContext
from ..gpusim.kernel import KernelStats
from .grouping import stable_key_order
from .hashing import mix_hash, radix_digit

#: Maximum radix bits a single invocation may use (256 partitions).
MAX_BITS_PER_PASS = 8


def partition_codes(
    keys: np.ndarray, total_bits: int, start_bit: int = 0, hashed: bool = False
) -> np.ndarray:
    """The partition number of each key for a ``total_bits`` partitioning.

    With ``hashed=True`` digits are taken from a mixed hash of the key
    instead of the raw key bits — used when keys are not uniformly
    distributed across their low bits.
    """
    base = mix_hash(keys) if hashed else keys
    return radix_digit(base, start_bit, total_bits)


def radix_partition_pass(
    ctx: GPUContext,
    keys: np.ndarray,
    payloads: Sequence[np.ndarray],
    start_bit: int,
    num_bits: int,
    phase: Optional[str] = None,
    hashed: bool = False,
    label: str = "",
) -> tuple:
    """One RADIX-PARTITION invocation (<= 8 bits).

    Returns ``(keys_out, payloads_out)`` with tuples grouped by the digit
    ``bits[start_bit : start_bit + num_bits]`` in ascending digit order,
    stably.  Charges one OneSweep-style kernel: a fused histogram read of
    the keys plus one read and one write of keys and payloads.
    """
    if num_bits > MAX_BITS_PER_PASS:
        raise ValueError(
            f"a single RADIX-PARTITION invocation supports at most "
            f"{MAX_BITS_PER_PASS} bits, got {num_bits}"
        )
    digit = partition_codes(keys, num_bits, start_bit=start_bit, hashed=hashed)
    order = np.argsort(digit, kind="stable")
    keys_out = keys[order]
    payloads_out = [p[order] for p in payloads]

    payload_bytes = sum(int(p.nbytes) for p in payloads)
    stats = KernelStats(
        name=f"radix_partition:{label}" if label else "radix_partition",
        items=int(keys.size),
        # fused histogram read of keys + read of keys & payloads
        seq_read_bytes=2 * int(keys.nbytes) + payload_bytes,
        seq_write_bytes=int(keys.nbytes) + payload_bytes,
        atomic_ops=1 << num_bits,
    )
    ctx.submit(stats, phase=phase)
    return keys_out, payloads_out


@dataclass
class Partitioned:
    """Result of a (possibly multi-pass) radix partitioning."""

    keys: np.ndarray
    payloads: List[np.ndarray]
    counts: np.ndarray  #: tuples per partition, ascending partition id
    offsets: np.ndarray  #: exclusive prefix sum of counts
    total_bits: int
    hashed: bool
    passes: int
    #: The stable permutation that produced this layout.  Pass it as
    #: ``order=`` to later :func:`radix_partition` calls on the *same*
    #: keys (lazy per-column transforms) to skip recomputing it.
    order: Optional[np.ndarray] = None

    @property
    def num_partitions(self) -> int:
        return int(self.counts.size)


def plan_passes(total_bits: int) -> List[tuple]:
    """Split a partitioning into LSD passes of <= 8 bits each.

    Returns ``[(start_bit, num_bits), ...]`` in execution order.
    """
    if total_bits <= 0:
        raise ValueError("total_bits must be positive")
    passes = []
    start = 0
    while start < total_bits:
        width = min(MAX_BITS_PER_PASS, total_bits - start)
        passes.append((start, width))
        start += width
    return passes


def radix_partition(
    ctx: GPUContext,
    keys: np.ndarray,
    payloads: Sequence[np.ndarray],
    total_bits: int,
    phase: Optional[str] = None,
    hashed: bool = False,
    label: str = "",
    compute_boundaries: bool = True,
    order: Optional[np.ndarray] = None,
) -> Partitioned:
    """Multi-pass stable radix partitioning into ``2**total_bits`` parts.

    Charges ``ceil(total_bits / 8)`` RADIX-PARTITION invocations (the
    paper uses 15-16 bits -> two invocations per column pair) and then
    computes partition boundaries with a histogram + exclusive scan,
    because the primitive itself leaves boundaries unknown (Section 4.3).

    Host-side, the composed LSD passes are equivalent to ONE stable sort
    of the full digit (each pass is a stable sort by a sub-digit), so
    the data movement runs as a single argsort + gather — the simulated
    per-pass kernels are unchanged, the result is bit-identical.

    ``compute_boundaries=False`` skips the boundary pass — correct when
    the same keys were already partitioned once (the partitioner is
    stable, so boundaries are identical; Algorithm 1's lazy per-column
    transforms reuse them).  ``order`` likewise reuses the stable
    permutation of an earlier :class:`Partitioned` of the same keys,
    skipping the host-side argsort entirely.
    """
    pass_plan = plan_passes(total_bits)
    ctx.count("partition_passes", len(pass_plan))

    codes = partition_codes(keys, total_bits, hashed=hashed)
    if order is None:
        # codes < 2**total_bits fit in int32 for any realistic bit
        # budget, unlocking the packed fast path of stable_key_order.
        narrow = codes.astype(np.int32, copy=False) if total_bits <= 31 else codes
        order = stable_key_order(narrow)
    keys_out = keys[order]
    payloads_out = [p[order] for p in payloads]

    payload_bytes = sum(int(p.nbytes) for p in payloads)
    pass_stats = [
        KernelStats(
            name=f"radix_partition:{label}" if label else "radix_partition",
            items=int(keys.size),
            # fused histogram read of keys + read of keys & payloads
            seq_read_bytes=2 * int(keys.nbytes) + payload_bytes,
            seq_write_bytes=int(keys.nbytes) + payload_bytes,
            atomic_ops=1 << num_bits,
        )
        for _, num_bits in pass_plan
    ]
    ctx.submit_many(pass_stats, phase=phase)

    counts = np.bincount(codes, minlength=1 << total_bits).astype(np.int64)
    offsets = np.zeros_like(counts)
    np.cumsum(counts[:-1], out=offsets[1:])
    if compute_boundaries:
        # Boundary computation: one extra read of keys + tiny writes.
        ctx.submit(
            KernelStats(
                name="partition_boundaries",
                items=int(keys.size),
                seq_read_bytes=int(keys.nbytes),
                seq_write_bytes=int(counts.nbytes + offsets.nbytes),
                atomic_ops=int(counts.size),
            ),
            phase=phase,
        )
    return Partitioned(
        keys=keys_out,
        payloads=payloads_out,
        counts=counts,
        offsets=offsets,
        total_bits=total_bits,
        hashed=hashed,
        passes=len(pass_plan),
        order=order,
    )
