"""agg06: TPC-H-shaped grouped aggregations.

Two canonical shapes over a lineitem-like table:

* Q1-like — group by (returnflag, linestatus): 8 groups, four
  aggregates; the privatized hash table's best case;
* Q18-like — group by order key: ~|rows|/4 groups; the high-cardinality
  case where the partitioned strategy wins.
"""

from __future__ import annotations

import numpy as np

from ...aggregation.base import AggSpec
from ...aggregation.planner import make_groupby_algorithm
from ...workloads.tpch import tpch_lineitem_like
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 60_000_000  # lineitem at SF=10
ALGORITHMS = ("HASH-AGG", "SORT-AGG", "PART-AGG")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    order_key, columns = tpch_lineitem_like(rows, seed=seed)
    result = ExperimentResult(
        experiment_id="agg06",
        title="TPC-H-shaped aggregations (total ms)",
        headers=["query", "groups"] + list(ALGORITHMS) + ["winner"],
    )

    # Q1-like: group by (returnflag, linestatus) - encoded as one key.
    q1_keys = (columns["returnflag"] * 2 + columns["linestatus"]).astype(np.int32)
    q1_aggs = [
        AggSpec("quantity", "sum"),
        AggSpec("extendedprice", "sum"),
        AggSpec("quantity", "mean"),
        AggSpec("quantity", "count"),
    ]
    # Q18-like: group by order key, one sum.
    q18_aggs = [AggSpec("quantity", "sum")]

    winners = {}
    for label, keys, aggs in (
        ("Q1-like", q1_keys, q1_aggs),
        ("Q18-like", order_key, q18_aggs),
    ):
        times = {}
        groups = int(np.unique(keys).size)
        for name in ALGORITHMS:
            res = make_groupby_algorithm(name).group_by(
                keys, columns, aggs, device=setup.device, seed=seed
            )
            times[name] = res.total_seconds * 1e3
        winner = min(times, key=times.get)
        winners[label] = winner
        result.add_row(label, groups, *[times[a] for a in ALGORITHMS], winner)
    result.findings["q1_hash_wins"] = float(winners["Q1-like"] == "HASH-AGG")
    result.findings["q18_part_wins"] = float(winners["Q18-like"] == "PART-AGG")
    return result
