"""Figure 16: sequences of joins over a star schema.

|F| = 2^27 fact tuples with N foreign keys; |D_i| = 2^25 dimension
tuples.  Foreign keys are materialized right before the join that needs
them.  As the sequence grows, every join materializes one more carried
payload column, so the *-OM advantage grows with N (paper: PHJ-OM is
1.49x PHJ-UM at N=2 and 1.78x at N=8).
"""

from __future__ import annotations

from ...joins.pipeline import JoinPipeline
from ...joins.planner import make_algorithm
from ...workloads.sequences import generate_star_schema
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_FACT_ROWS = 1 << 27
PAPER_DIM_ROWS = 1 << 25
SEQUENCE_LENGTHS = (1, 2, 4, 6, 8)
ALGORITHMS = ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    fact_rows = setup.rows(PAPER_FACT_ROWS)
    dim_rows = setup.rows(PAPER_DIM_ROWS)
    result = ExperimentResult(
        experiment_id="fig16",
        title="Sequences of joins (throughput, Mtuples/s)",
        headers=["num_joins"] + list(ALGORITHMS) + ["phj_om_over_phj_um"],
    )
    ratios = {}
    for n_joins in SEQUENCE_LENGTHS:
        fact, fk_names, dims = generate_star_schema(
            fact_rows, dim_rows, n_joins, seed=seed
        )
        throughputs = {}
        for name in ALGORITHMS:
            pipeline = JoinPipeline(make_algorithm(name, setup.config))
            res = pipeline.run(fact, fk_names, dims, device=setup.device, seed=seed)
            throughputs[name] = res.throughput_tuples_per_s / 1e6
        ratio = throughputs["PHJ-OM"] / throughputs["PHJ-UM"]
        ratios[n_joins] = ratio
        result.add_row(n_joins, *[throughputs[a] for a in ALGORITHMS], ratio)
    result.findings["phj_om_ratio_at_2"] = ratios.get(2, 0.0)
    result.findings["phj_om_ratio_at_8"] = ratios.get(8, 0.0)
    result.findings["advantage_grows"] = float(ratios[8] > ratios[2])
    result.add_note("paper: PHJ-OM/PHJ-UM grows from 1.49x (N=2) to 1.78x (N=8)")
    return result
