"""Narrow-join fast path internals (Section 2.2's two-phase processing)."""

import numpy as np
import pytest

from repro.gpusim import GPUContext
from repro.joins import (
    JoinConfig,
    PartitionedHashJoin,
    PartitionedHashJoinUM,
    SortMergeJoinOM,
    SortMergeJoinUM,
)
from repro.joins.narrow import is_narrow
from repro.relational import Relation, reference_join
from repro.workloads import JoinWorkloadSpec, generate_join_workload


@pytest.fixture(scope="module")
def narrow_relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=4096, s_rows=8192, r_payload_columns=1,
                         s_payload_columns=1, seed=2)
    )


class TestDetection:
    def test_is_narrow(self, narrow_relations):
        r, s = narrow_relations
        assert is_narrow(r, s)

    def test_wide_not_narrow(self):
        r, s = generate_join_workload(
            JoinWorkloadSpec(r_rows=64, s_rows=64, r_payload_columns=2,
                             s_payload_columns=1, seed=0)
        )
        assert not is_narrow(r, s)

    def test_zero_payloads_is_narrow(self):
        r = Relation([("key", np.arange(8, dtype=np.int32))], key="key")
        assert is_narrow(r, r)


class TestNarrowBehaviour:
    def test_no_materialize_phase(self, narrow_relations, setup):
        r, s = narrow_relations
        for cls in (SortMergeJoinUM, SortMergeJoinOM, PartitionedHashJoin,
                    PartitionedHashJoinUM):
            result = cls(setup.config).join(r, s, device=setup.device, seed=0)
            assert "materialize" not in result.phase_seconds

    def test_output_correct(self, narrow_relations, setup):
        r, s = narrow_relations
        expected = reference_join(r, s)
        for cls in (SortMergeJoinUM, PartitionedHashJoinUM):
            result = cls(setup.config).join(r, s, device=setup.device, seed=0)
            assert result.output.equals_unordered(expected)

    def test_no_tuple_id_kernels(self, narrow_relations, setup):
        """The narrow path never initializes physical tuple IDs."""
        r, s = narrow_relations
        ctx = GPUContext(device=setup.device, seed=0)
        SortMergeJoinUM(setup.config).join(r, s, ctx=ctx)
        names = [rec.stats.name for rec in ctx.timeline.records()]
        assert not any(name.startswith("init_ids") for name in names)

    def test_bucket_chain_skips_boundary_pass(self, narrow_relations, setup):
        """PHJ-UM's small-input edge: no boundary histogram (Figure 9)."""
        r, s = narrow_relations
        ctx_um = GPUContext(device=setup.device, seed=0)
        PartitionedHashJoinUM(setup.config).join(r, s, ctx=ctx_um)
        ctx_om = GPUContext(device=setup.device, seed=0)
        PartitionedHashJoin(setup.config).join(r, s, ctx=ctx_om)
        um_names = [rec.stats.name for rec in ctx_um.timeline.records()]
        om_names = [rec.stats.name for rec in ctx_om.timeline.records()]
        assert not any("boundaries" in n for n in um_names)
        assert any("boundaries" in n for n in om_names)

    def test_no_leaks(self, narrow_relations, setup):
        r, s = narrow_relations
        for cls in (SortMergeJoinOM, PartitionedHashJoin, PartitionedHashJoinUM):
            ctx = GPUContext(device=setup.device, seed=0)
            cls(setup.config).join(r, s, ctx=ctx)
            ctx.mem.assert_no_leaks()

    def test_asymmetric_payload_counts_still_narrow(self, setup):
        # 1 payload on one side, 0 on the other.
        r, _ = generate_join_workload(
            JoinWorkloadSpec(r_rows=256, s_rows=256, r_payload_columns=1,
                             s_payload_columns=1, seed=1)
        )
        s = Relation([("key", np.arange(256, dtype=np.int32))], key="key")
        result = PartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        assert result.output.column_names == ["key", "r1"]
        assert "materialize" not in result.phase_seconds

    def test_double_merge_pass_option_respected(self, narrow_relations, setup):
        r, s = narrow_relations
        cfg = JoinConfig(
            tuples_per_partition=setup.config.tuples_per_partition,
            bucket_tuples=setup.config.bucket_tuples,
            double_merge_pass=True,
        )
        single = SortMergeJoinOM(setup.config).join(r, s, device=setup.device, seed=0)
        double = SortMergeJoinOM(cfg).join(r, s, device=setup.device, seed=0)
        assert double.phase_seconds["match"] > single.phase_seconds["match"]
        assert single.output.equals_unordered(double.output)
