"""Cooperative cancellation on the simulated clock.

A :class:`CancellationToken` carries a query's simulated deadline and
the simulated seconds it has consumed so far.  Execution layers *check*
the token at their natural unwind points — kernel submission
(:meth:`GPUContext.submit <repro.gpusim.context.GPUContext.submit>`),
cluster superstep boundaries
(:class:`~repro.cluster.context.ClusterContext`), and executor operator
boundaries — and *charge* it with the simulated time of the work they
account.  When the consumed time crosses the deadline, the next check
raises a typed :class:`~repro.errors.QueryCancelledError` and the query
unwinds cleanly through ordinary exception propagation: context
managers release buffers, the serving layer frees the query's
:class:`~repro.gpusim.memory.MemoryReservation`, and the outcome is
recorded with the reason and the boundary that observed it.

Cancellation is *cooperative* by design: a kernel that has been
submitted always completes (and is charged) before the token is
consulted again, mirroring how a real GPU cannot interrupt a launched
kernel.  Tokens are therefore checked before starting new work, never
during it.

Activation mirrors :func:`repro.obs.session.current_session`: a
stack-based ambient token that :class:`~repro.gpusim.context.GPUContext`
picks up at construction, so the token reaches the per-algorithm
contexts created deep inside join/group-by implementations without
threading a parameter through every signature.

>>> from repro.cancel import CancellationToken
>>> token = CancellationToken(deadline_s=1.0)
>>> token.charge(0.4); token.check("kernel:probe")   # still in budget
>>> token.charge(0.7)
>>> token.expired
True
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from .errors import QueryCancelledError

_ACTIVE_TOKENS: List["CancellationToken"] = []


def current_token() -> Optional["CancellationToken"]:
    """The innermost active token, or ``None``."""
    return _ACTIVE_TOKENS[-1] if _ACTIVE_TOKENS else None


class CancellationToken:
    """Deadline + consumed-time state shared by one query's execution.

    Parameters
    ----------
    deadline_s:
        Absolute simulated deadline.  ``None`` means the token can only
        be cancelled explicitly via :meth:`cancel`.
    start_s:
        Clock position at which execution began (the serving layer
        passes the admission time); ``now_s`` is ``start_s`` plus all
        charged seconds.
    label:
        Diagnostic name carried into the raised error message.
    """

    __slots__ = (
        "deadline_s", "start_s", "consumed_s", "label",
        "cancelled", "reason", "site", "checks",
    )

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        start_s: float = 0.0,
        label: str = "",
    ):
        self.deadline_s = deadline_s
        self.start_s = float(start_s)
        self.consumed_s = 0.0
        self.label = label
        self.cancelled = False
        self.reason: Optional[str] = None
        self.site: str = ""
        self.checks = 0

    # -- clock -------------------------------------------------------------

    @property
    def now_s(self) -> float:
        """Simulated position: start plus every charged second."""
        return self.start_s + self.consumed_s

    @property
    def remaining_s(self) -> float:
        """Simulated seconds left before the deadline (inf when none)."""
        if self.deadline_s is None:
            return float("inf")
        return self.deadline_s - self.now_s

    @property
    def expired(self) -> bool:
        """True once the charged time has reached the deadline."""
        return self.deadline_s is not None and self.now_s >= self.deadline_s

    def charge(self, seconds: float) -> None:
        """Account *seconds* of completed simulated work to this token."""
        self.consumed_s += seconds

    # -- cancellation ------------------------------------------------------

    def cancel(self, reason: str = "manual") -> None:
        """Mark the token cancelled; the next :meth:`check` raises."""
        if not self.cancelled:
            self.cancelled = True
            self.reason = reason

    def check(self, site: str = "") -> None:
        """Raise :class:`~repro.errors.QueryCancelledError` if cancelled
        or past the deadline; otherwise a no-op.

        *site* names the boundary performing the check and is recorded
        on the token and the raised error.
        """
        self.checks += 1
        if not self.cancelled and self.expired:
            self.cancelled = True
            self.reason = "deadline"
        if self.cancelled:
            self.site = self.site or site
            name = f" {self.label!r}" if self.label else ""
            raise QueryCancelledError(
                f"query{name} cancelled ({self.reason}) at {site or 'unknown'}: "
                f"consumed {self.consumed_s:.6f}s"
                + (
                    f" of deadline {self.deadline_s:.6f}s"
                    if self.deadline_s is not None
                    else ""
                ),
                reason=self.reason or "manual",
                site=site,
                deadline_s=self.deadline_s,
                consumed_s=self.consumed_s,
            )

    # -- ambient activation ------------------------------------------------

    @contextmanager
    def activated(self) -> Iterator["CancellationToken"]:
        """Install as the ambient token for the dynamic extent.

        :class:`~repro.gpusim.context.GPUContext` instances constructed
        inside the block pick this token up automatically.
        """
        _ACTIVE_TOKENS.append(self)
        try:
            yield self
        finally:
            if _ACTIVE_TOKENS and _ACTIVE_TOKENS[-1] is self:
                _ACTIVE_TOKENS.pop()
            elif self in _ACTIVE_TOKENS:  # defensive: unbalanced nesting
                _ACTIVE_TOKENS.remove(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return (
            f"CancellationToken({self.label!r}, {state}, "
            f"consumed={self.consumed_s:.6f}s, deadline={self.deadline_s})"
        )
