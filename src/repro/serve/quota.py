"""Per-tenant quotas and the server-wide fault-retry budget.

Multi-tenant fairness for :class:`~repro.serve.server.QueryServer`:

* :class:`TenantQuota` caps what one tenant may hold at once — in-flight
  queries, reserved device bytes, and queued requests.  A tenant at its
  cap is *skipped* during admission (its queue entries stay put) rather
  than blocking the queue head, so a greedy tenant cannot starve others
  and others cannot starve it: the moment its usage drops below the cap
  its queued work is eligible again.
* :class:`RetryBudget` bounds the total simulated time the server will
  spend recovering from injected kernel faults.  Fault retries burn
  device time without producing rows; without a budget a fault-retry
  storm from one misbehaving workload monopolizes the device.  The
  budget is a token bucket on the *serving* clock: it starts with
  ``initial_s`` seconds, refills at ``refill_per_s`` seconds of retry
  time per simulated second, and every fault-injected query's measured
  retry time (the ``fault_retry_seconds`` trace counter) is spent
  against it.  While exhausted, new fault-injected submissions are
  rejected with :class:`~repro.errors.AdmissionError`
  (``reason="retry-budget"``); clean queries are unaffected.

Both are plain deterministic state machines on simulated time — no
wall-clock, no randomness — so serving runs replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ServeConfigError


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission caps; ``None`` means unlimited.

    Parameters
    ----------
    max_concurrent:
        Maximum queries the tenant may have in flight at once.
    max_reserved_bytes:
        Maximum device bytes the tenant's admission reservations may
        hold at once (the sum of its in-flight ``estimate_bytes``).
    max_queue_depth:
        Maximum requests the tenant may have waiting in the admission
        queue; submissions beyond it are rejected with
        ``reason="tenant-queue-full"`` without touching other tenants'
        queue space.
    """

    max_concurrent: Optional[int] = None
    max_reserved_bytes: Optional[int] = None
    max_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ServeConfigError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.max_reserved_bytes is not None and self.max_reserved_bytes <= 0:
            raise ServeConfigError(
                f"max_reserved_bytes must be positive, got {self.max_reserved_bytes}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ServeConfigError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )


@dataclass
class TenantState:
    """Live accounting for one tenant (created on first submission)."""

    queued: int = 0
    inflight: int = 0
    reserved_bytes: int = 0
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    failed: int = 0
    #: Admission passes in which this tenant's queue head was skipped
    #: because the tenant was at quota (others were admitted past it).
    quota_deferrals: int = 0

    def snapshot(self) -> dict:
        return {
            "queued": self.queued,
            "inflight": self.inflight,
            "reserved_bytes": self.reserved_bytes,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "quota_deferrals": self.quota_deferrals,
        }


@dataclass
class RetryBudget:
    """Token bucket of simulated fault-retry seconds on the serving clock.

    ``allowance(t) = initial_s + refill_per_s * t``; the budget is
    exhausted once the retry seconds *spent* reach the allowance.  Spend
    is recorded when a fault-injected query's correctness half runs (the
    session's ``fault_retry_seconds`` counter), so enforcement is
    deterministic in admission order.

    >>> budget = RetryBudget(initial_s=1.0, refill_per_s=0.5)
    >>> budget.exhausted(0.0)
    False
    >>> budget.spend(1.2)
    >>> budget.exhausted(0.0)          # 1.2 spent > 1.0 allowance
    True
    >>> budget.exhausted(1.0)          # refilled: allowance 1.5 > 1.2
    False
    """

    initial_s: float = 0.0
    refill_per_s: float = 0.0
    spent_s: float = field(default=0.0, init=False)
    rejections: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.initial_s < 0:
            raise ServeConfigError(f"initial_s must be >= 0, got {self.initial_s}")
        if self.refill_per_s < 0:
            raise ServeConfigError(
                f"refill_per_s must be >= 0, got {self.refill_per_s}"
            )

    def allowance_s(self, clock_s: float) -> float:
        """Total retry seconds granted by serving time *clock_s*."""
        return self.initial_s + self.refill_per_s * clock_s

    def remaining_s(self, clock_s: float) -> float:
        """Unspent retry seconds at *clock_s* (clamped at zero)."""
        return max(0.0, self.allowance_s(clock_s) - self.spent_s)

    def exhausted(self, clock_s: float) -> bool:
        """True while spent retry time has caught up with the allowance."""
        return self.spent_s >= self.allowance_s(clock_s)

    def spend(self, seconds: float) -> None:
        """Charge *seconds* of measured fault-retry time to the budget."""
        if seconds > 0:
            self.spent_s += seconds
