"""Tier cost model calibration against the existing out-of-core paths.

The CPU tier must not invent new physics: its charges ride the same
:class:`~repro.gpusim.costmodel.CostModel` formulas as everything else,
and the admission-transfer price is *exactly* the kernel shape
``OutOfCoreJoin`` charges for host<->device staging
(``KernelStats(host_transfer_bytes=n, launches=0)``).
"""

import pytest

from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import A100, CPU_SERVER
from repro.gpusim.kernel import KernelStats
from repro.tier import TierCostModel


@pytest.fixture
def model():
    return TierCostModel(A100, CPU_SERVER)


def test_transfer_matches_out_of_core_staging_kernel(model):
    """Pin: admission transfer == the OOC chunk-staging charge."""
    n = 64 << 20
    ooc_shape = KernelStats(name="ooc_stage", host_transfer_bytes=n, launches=0)
    assert model.transfer_seconds(n) == CostModel(A100).time(ooc_shape)


def test_transfer_closed_form(model):
    n = 1 << 30
    assert model.transfer_seconds(n) == pytest.approx(
        n / A100.interconnect_bandwidth
    )


def test_gpu_streams_faster_than_cpu(model):
    n = 256 << 20
    assert model.gpu_scan_seconds(n, items=n // 8) < model.cpu_scan_seconds(
        n, items=n // 8
    )


def test_scan_costs_match_plain_cost_model(model):
    n = 32 << 20
    stats = KernelStats(
        name="tier_cpu_scan", launches=0, seq_read_bytes=n, items=n // 4
    )
    assert model.cpu_scan_seconds(n, items=n // 4) == CostModel(CPU_SERVER).time(
        stats
    )


def test_benefit_per_byte_positive_for_real_device_pair(model):
    assert model.benefit_per_byte() > 0


def test_accesses_to_amortize_is_scale_free(model):
    """Transfer and benefit are both linear in bytes, so the amortization
    point is a device-pair constant — placement can reason per access."""
    a = model.accesses_to_amortize(1 << 20)
    b = model.accesses_to_amortize(1 << 28)
    assert a == pytest.approx(b)
    assert a > 1.0  # admission is never free on PCIe-class links


def test_degenerate_pair_declines_everything():
    model = TierCostModel(CPU_SERVER, CPU_SERVER)
    assert model.benefit_per_byte() == 0.0
    assert model.accesses_to_amortize(1 << 20) == float("inf")
