"""Shared machinery for grouped aggregation.

The SIGMOD 2025 scope extends the join study to grouped aggregations.
We implement the three standard GPU strategies with the same
methodology as the joins — real numpy semantics, measured traffic,
phase-structured simulated time:

* hash aggregation into a global table (cheap for few groups, random
  traffic for many);
* sort-based aggregation (sort + segmented reduce; robust, sequential);
* partitioned aggregation (radix partition so each partition's groups
  fit in shared memory — the group-by analogue of PHJ).

Each strategy supports the two materialization patterns of the paper:
``gfur`` transforms ``(key, tuple ID)`` and fetches value columns through
permuted IDs (unclustered), while ``gftr`` transforms each value column
*with* the keys and streams it sequentially — the exact analogue of
Algorithm 1 for aggregation pipelines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import AggregationConfigError
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, DeviceSpec

#: Canonical group-by phases.
TRANSFORM, AGGREGATE, MATERIALIZE = "transform", "aggregate", "materialize"

#: Supported aggregate operators.
SUPPORTED_OPS = ("sum", "count", "min", "max", "mean")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``op`` applied to value column ``column``."""

    column: str
    op: str

    def __post_init__(self):
        if self.op not in SUPPORTED_OPS:
            raise AggregationConfigError(
                f"unsupported aggregate {self.op!r}; supported: {SUPPORTED_OPS}"
            )

    @property
    def output_name(self) -> str:
        return f"{self.op}_{self.column}"


@dataclass
class GroupByConfig:
    """Options shared by the aggregation strategies.

    ``tuples_per_partition`` is the target number of *distinct groups*
    per partition for the partitioned strategy; ``None`` (default)
    derives it from the device's shared-memory capacity at run time.
    """

    tuples_per_partition: Optional[int] = None
    partition_bits: Optional[int] = None
    hashed_partitioning: bool = True
    table_load_factor: float = 0.5

    def validate(self) -> None:
        if self.tuples_per_partition is not None and self.tuples_per_partition <= 0:
            raise AggregationConfigError("tuples_per_partition must be positive")
        if not 0 < self.table_load_factor <= 1:
            raise AggregationConfigError("table_load_factor must be in (0, 1]")


@dataclass
class GroupByResult:
    """Outcome of one simulated grouped aggregation."""

    output: "OrderedDict[str, np.ndarray]"
    algorithm: str
    pattern: str
    device: DeviceSpec
    phase_seconds: Dict[str, float]
    rows: int
    groups: int
    input_bytes: int
    peak_aux_bytes: int
    kernel_count: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def throughput_tuples_per_s(self) -> float:
        if self.total_seconds == 0:
            return float("inf")
        return self.rows / self.total_seconds

    def column(self, name: str) -> np.ndarray:
        return self.output[name]

    def describe(self) -> str:
        parts = ", ".join(
            f"{p}={s * 1e3:.3f}ms" for p, s in self.phase_seconds.items()
        )
        return (
            f"{self.algorithm}[{self.pattern}] on {self.device.name}: "
            f"{self.groups} groups from {self.rows} rows, "
            f"total={self.total_seconds * 1e3:.3f}ms ({parts})"
        )


def segmented_aggregate(
    inverse: np.ndarray,
    num_groups: int,
    values: Optional[np.ndarray],
    op: str,
) -> np.ndarray:
    """Aggregate *values* per group given group codes ``inverse``.

    The numeric semantics shared by every strategy; traffic is charged by
    the callers.  ``values`` may be None for ``count``.
    """
    counts = np.bincount(inverse, minlength=num_groups)
    if op == "count":
        return counts.astype(np.int64)
    if values is None:
        raise AggregationConfigError(f"aggregate {op!r} requires a value column")
    if op == "sum":
        return np.bincount(
            inverse, weights=values.astype(np.float64), minlength=num_groups
        ).astype(np.int64)
    if op == "mean":
        sums = np.bincount(
            inverse, weights=values.astype(np.float64), minlength=num_groups
        )
        return sums / np.maximum(counts, 1)
    if op in ("min", "max"):
        reducer = np.minimum if op == "min" else np.maximum
        fill = np.iinfo(np.int64).max if op == "min" else np.iinfo(np.int64).min
        out = np.full(num_groups, fill, dtype=np.int64)
        reducer.at(out, inverse, values.astype(np.int64))
        return out
    raise AggregationConfigError(f"unsupported aggregate {op!r}")


class GroupByAlgorithm(ABC):
    """Base class for the three aggregation strategies."""

    name: str = ""
    pattern: str = ""

    def __init__(self, config: Optional[GroupByConfig] = None):
        self.config = config or GroupByConfig()
        self.config.validate()

    def group_by(
        self,
        keys: np.ndarray,
        values: Dict[str, np.ndarray],
        aggregates: List[AggSpec],
        ctx: Optional[GPUContext] = None,
        device: DeviceSpec = A100,
        seed: Optional[int] = None,
    ) -> GroupByResult:
        """Aggregate *values* grouped by *keys*.

        Returns group keys in ascending order with one output column per
        aggregate (named ``<op>_<column>``).
        """
        for spec in aggregates:
            if spec.op != "count" and spec.column not in values:
                raise AggregationConfigError(
                    f"aggregate references missing column {spec.column!r}"
                )
        if ctx is None:
            ctx = GPUContext(device=device, seed=seed)

        with ctx.trace_span(
            f"groupby:{self.name}",
            category="algorithm",
            pattern=self.pattern,
            rows=int(keys.size),
        ):
            output = self._execute(ctx, keys, values, aggregates)
        ctx.count("groupby_groups", int(output["group_key"].size))

        input_bytes = int(keys.nbytes) + sum(int(v.nbytes) for v in values.values())
        return GroupByResult(
            output=output,
            algorithm=self.name,
            pattern=self.pattern,
            device=ctx.device,
            phase_seconds=dict(ctx.timeline.breakdown()),
            rows=int(keys.size),
            groups=int(output["group_key"].size),
            input_bytes=input_bytes,
            peak_aux_bytes=ctx.mem.peak_bytes,
            kernel_count=ctx.timeline.kernel_count(),
        )

    @abstractmethod
    def _execute(
        self,
        ctx: GPUContext,
        keys: np.ndarray,
        values: Dict[str, np.ndarray],
        aggregates: List[AggSpec],
    ) -> "OrderedDict[str, np.ndarray]":
        """Run the aggregation, charging phase-attributed kernels."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, pattern={self.pattern!r})"
