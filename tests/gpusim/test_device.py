"""Device spec presets and geometry scaling."""

import pytest

from repro.gpusim.device import (
    A100,
    BUILTIN_DEVICES,
    CPU_SERVER,
    RTX3090,
    get_device,
    scaled_device,
)


class TestPresets:
    def test_a100_matches_table3(self):
        assert A100.num_execution_units == 108
        assert A100.l2_bytes == 40 * 1024 * 1024
        assert A100.global_mem_bytes == 40 * 1024 ** 3
        assert A100.mem_bandwidth == pytest.approx(1555e9)
        assert A100.shared_mem_bytes == 164 * 1024
        assert A100.is_gpu

    def test_rtx3090_matches_table3(self):
        assert RTX3090.num_execution_units == 82
        assert RTX3090.l2_bytes == 6 * 1024 * 1024
        assert RTX3090.clock_hz == pytest.approx(1.395e9)
        assert RTX3090.is_gpu

    def test_cpu_is_not_gpu(self):
        assert not CPU_SERVER.is_gpu
        assert CPU_SERVER.per_item_cost_s > A100.per_item_cost_s

    def test_a100_faster_memory_than_rtx3090(self):
        assert A100.mem_bandwidth > RTX3090.mem_bandwidth
        assert A100.l2_bytes > RTX3090.l2_bytes

    def test_registry_lookup(self):
        assert get_device("A100") is A100
        assert set(BUILTIN_DEVICES) == {"A100", "RTX3090", "CPU-2S-NUMA"}

    def test_unknown_device_lists_known(self):
        with pytest.raises(KeyError, match="A100"):
            get_device("H100")

    def test_describe_mentions_name_and_bandwidth(self):
        text = A100.describe()
        assert "A100" in text
        assert "GB/s" in text


class TestScaledDevice:
    def test_scale_one_is_identity(self):
        assert scaled_device(A100, 1.0) is A100

    def test_geometry_scales_but_bandwidth_does_not(self):
        scaled = scaled_device(A100, 0.5)
        assert scaled.l2_bytes == A100.l2_bytes // 2
        assert scaled.shared_mem_bytes == A100.shared_mem_bytes // 2
        assert scaled.global_mem_bytes == A100.global_mem_bytes // 2
        assert scaled.mem_bandwidth == A100.mem_bandwidth
        assert scaled.per_item_cost_s == A100.per_item_cost_s

    def test_launch_overhead_scales(self):
        scaled = scaled_device(A100, 0.25)
        assert scaled.kernel_launch_overhead_s == pytest.approx(
            A100.kernel_launch_overhead_s * 0.25
        )

    def test_name_records_scale(self):
        assert "@" in scaled_device(A100, 0.5).name

    def test_tiny_scale_keeps_minimum_sizes(self):
        scaled = scaled_device(A100, 1e-9)
        assert scaled.l2_bytes >= 4096
        assert scaled.shared_mem_bytes >= 1024

    @pytest.mark.parametrize("bad", [0.0, -1.0, 2.0])
    def test_invalid_scale_rejected(self, bad):
        with pytest.raises(ValueError):
            scaled_device(A100, bad)

    def test_with_overrides(self):
        custom = A100.with_overrides(l2_bytes=123)
        assert custom.l2_bytes == 123
        assert custom.mem_bandwidth == A100.mem_bandwidth
        assert A100.l2_bytes != 123  # original untouched
