"""Projection pushdown, fused join+aggregate, and out-of-core joins."""

import numpy as np
import pytest

from repro.aggregation import AggSpec
from repro.errors import JoinConfigError
from repro.gpusim import GPUContext
from repro.joins import (
    FusedJoinAggregate,
    JoinConfig,
    OutOfCoreJoin,
    PartitionedHashJoin,
    SortMergeJoinOM,
    SortMergeJoinUM,
    estimate_join_footprint,
)
from repro.joins.base import output_column_names
from repro.relational import Relation, reference_groupby, reference_join
from repro.workloads import JoinWorkloadSpec, generate_join_workload


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=2048, s_rows=4096, r_payload_columns=3,
                         s_payload_columns=2, seed=4)
    )


class TestProjection:
    def test_schema_filtered(self, relations):
        r, s = relations
        schema = output_column_names(r, s, projection=("r2", "s1"))
        assert [out for _, _, out in schema] == ["key", "r2", "s1"]

    def test_unknown_column_rejected(self, relations):
        r, s = relations
        with pytest.raises(JoinConfigError, match="unknown columns"):
            output_column_names(r, s, projection=("nope",))

    @pytest.mark.parametrize(
        "cls", [PartitionedHashJoin, SortMergeJoinOM, SortMergeJoinUM],
        ids=lambda c: c.name,
    )
    def test_projected_join_correct(self, relations, cls):
        r, s = relations
        full = reference_join(r, s)
        cfg = JoinConfig(projection=("r1", "s2"))
        result = cls(cfg).join(r, s, seed=0)
        assert result.output.column_names == ["key", "r1", "s2"]
        projected = Relation(
            [(n, full.column(n)) for n in ("key", "r1", "s2")], key="key"
        )
        assert result.output.equals_unordered(projected)

    def test_projection_saves_materialization_time(self, relations, setup):
        r, s = relations
        full = PartitionedHashJoin(setup.config).join(r, s, device=setup.device)
        cfg = JoinConfig(
            tuples_per_partition=setup.config.tuples_per_partition,
            bucket_tuples=setup.config.bucket_tuples,
            projection=("r1",),
        )
        thin = PartitionedHashJoin(cfg).join(r, s, device=setup.device)
        assert thin.phase_seconds["materialize"] < full.phase_seconds["materialize"]

    def test_no_leaks_with_projection(self, relations, setup):
        r, s = relations
        cfg = JoinConfig(projection=("s1",))
        for cls in (PartitionedHashJoin, SortMergeJoinOM):
            ctx = GPUContext(device=setup.device, seed=0)
            cls(cfg).join(r, s, ctx=ctx)
            ctx.mem.assert_no_leaks()


class TestFused:
    def test_fused_aggregates_match_reference(self, relations):
        r, s = relations
        full = reference_join(r, s)
        pipeline = FusedJoinAggregate(PartitionedHashJoin())
        result = pipeline.run(
            r, s, group_column="r1",
            aggregates=[AggSpec("s1", "sum"), AggSpec("s1", "count")], seed=0,
        )
        expected = reference_groupby(
            full.column("r1"), {"s1": full.column("s1")}, {"s1": "sum"}
        )
        assert np.array_equal(result.output["sum_s1"], expected["sum_s1"])
        assert np.array_equal(result.output["group_key"], expected["group_key"])

    def test_fused_faster_than_unfused(self, relations, setup):
        r, s = relations
        pipeline = FusedJoinAggregate(PartitionedHashJoin(setup.config))
        aggs = [AggSpec("s1", "sum")]
        fused = pipeline.run(r, s, "r1", aggs, device=setup.device, seed=0)
        unfused = pipeline.run(r, s, "r1", aggs, device=setup.device, seed=0,
                               fuse=False)
        assert fused.total_seconds < unfused.total_seconds
        assert fused.fusion_credit_seconds > 0
        assert unfused.fusion_credit_seconds == 0

    def test_fused_and_unfused_agree(self, relations):
        r, s = relations
        pipeline = FusedJoinAggregate(PartitionedHashJoin())
        aggs = [AggSpec("s2", "max")]
        fused = pipeline.run(r, s, "r2", aggs, seed=0)
        unfused = pipeline.run(r, s, "r2", aggs, seed=0, fuse=False)
        assert np.array_equal(fused.output["max_s2"], unfused.output["max_s2"])

    def test_callers_algorithm_untouched(self, relations):
        r, s = relations
        algo = PartitionedHashJoin()
        FusedJoinAggregate(algo).run(r, s, "r1", [AggSpec("s1", "sum")], seed=0)
        assert algo.config.projection is None

    def test_count_only_aggregate(self, relations):
        r, s = relations
        pipeline = FusedJoinAggregate(PartitionedHashJoin())
        result = pipeline.run(r, s, "r1", [AggSpec("rows", "count")], seed=0)
        full = reference_join(r, s)
        expected = reference_groupby(full.column("r1"), {}, {"rows": "count"})
        assert np.array_equal(result.output["count_rows"], expected["count_rows"])


class TestOutOfCore:
    def test_in_memory_shortcut(self, relations):
        r, s = relations
        result = OutOfCoreJoin(PartitionedHashJoin()).join(r, s, seed=0)
        assert not result.staged
        assert result.num_chunks == 1
        assert result.transfer_seconds > 0

    @pytest.mark.parametrize("divisor", [4, 16])
    def test_staged_join_correct(self, relations, divisor):
        r, s = relations
        expected = reference_join(r, s)
        budget = estimate_join_footprint(r, s) // divisor
        result = OutOfCoreJoin(
            PartitionedHashJoin(), device_budget_bytes=budget
        ).join(r, s, seed=0)
        assert result.staged
        assert result.num_chunks >= 2
        assert result.output.equals_unordered(expected)
        assert result.matches == expected.num_rows

    def test_chunk_count_grows_as_budget_shrinks(self, relations):
        r, s = relations
        footprint = estimate_join_footprint(r, s)
        ooc = OutOfCoreJoin(PartitionedHashJoin())
        chunks = [ooc.plan_chunks(r, s, footprint // d) for d in (1, 2, 4, 8)]
        assert chunks[0] == 1
        assert chunks == sorted(chunks)

    def test_staging_costs_time(self, relations):
        r, s = relations
        fits = OutOfCoreJoin(PartitionedHashJoin()).join(r, s, seed=0)
        budget = estimate_join_footprint(r, s) // 8
        staged = OutOfCoreJoin(
            PartitionedHashJoin(), device_budget_bytes=budget
        ).join(r, s, seed=0)
        assert staged.total_seconds > fits.total_seconds
        assert staged.host_partition_seconds > 0

    def test_zero_budget_rejected(self, relations):
        r, s = relations
        with pytest.raises(JoinConfigError):
            OutOfCoreJoin(PartitionedHashJoin(), device_budget_bytes=0).join(r, s)

    def test_chunk_fanout_capped(self, relations):
        from repro.joins.out_of_core import MAX_CHUNKS

        r, s = relations
        ooc = OutOfCoreJoin(PartitionedHashJoin())
        assert ooc.plan_chunks(r, s, budget=1) == MAX_CHUNKS

    def test_no_matches_across_chunks(self):
        r = Relation.from_key_payloads(
            np.arange(100, dtype=np.int32),
            [np.arange(100, dtype=np.int32)], payload_prefix="r",
        )
        s = Relation.from_key_payloads(
            np.arange(1000, 1100, dtype=np.int32),
            [np.arange(100, dtype=np.int32)], payload_prefix="s",
        )
        result = OutOfCoreJoin(
            PartitionedHashJoin(), device_budget_bytes=64
        ).join(r, s, seed=0)
        assert result.matches == 0
        assert result.output.column_names == ["key", "r1", "s1"]
