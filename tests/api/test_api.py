"""Top-level convenience API."""

import numpy as np
import pytest

from repro import (
    A100,
    AggSpec,
    Relation,
    group_by,
    join,
    reference_groupby,
    reference_join,
)


@pytest.fixture
def relations():
    rng = np.random.default_rng(0)
    r = Relation.from_key_payloads(
        rng.permutation(2000).astype(np.int32),
        [rng.integers(0, 99, 2000).astype(np.int32) for _ in range(2)],
        payload_prefix="r",
    )
    s = Relation.from_key_payloads(
        rng.integers(0, 2000, 5000).astype(np.int32),
        [rng.integers(0, 99, 5000).astype(np.int32) for _ in range(2)],
        payload_prefix="s",
    )
    return r, s


class TestJoin:
    def test_auto_picks_and_is_correct(self, relations):
        r, s = relations
        result = join(r, s)
        assert result.algorithm in ("PHJ-OM", "PHJ-UM", "SMJ-OM", "SMJ-UM")
        assert result.output.equals_unordered(reference_join(r, s))

    def test_named_algorithm(self, relations):
        r, s = relations
        result = join(r, s, algorithm="SMJ-UM")
        assert result.algorithm == "SMJ-UM"

    def test_device_by_name(self, relations):
        r, s = relations
        result = join(r, s, device="RTX3090")
        assert result.device.name == "RTX3090"

    def test_device_by_spec(self, relations):
        r, s = relations
        assert join(r, s, device=A100).device is A100

    def test_unknown_algorithm(self, relations):
        r, s = relations
        with pytest.raises(KeyError):
            join(r, s, algorithm="WAT")

    def test_unknown_device(self, relations):
        r, s = relations
        with pytest.raises(KeyError):
            join(r, s, device="TPU")

    def test_hints_steer_planner(self, relations):
        r, s = relations
        low = join(r, s, match_ratio=0.05)
        assert low.algorithm == "PHJ-UM"
        skewed_low = join(r, s, match_ratio=0.05, zipf_factor=1.5)
        assert skewed_low.algorithm == "SMJ-UM"


class TestGroupBy:
    def test_dict_aggregates(self):
        keys = np.array([1, 1, 2], dtype=np.int32)
        result = group_by(keys, {"v": np.array([5, 6, 7], dtype=np.int32)}, {"v": "sum"})
        assert list(result.output["sum_v"]) == [11, 7]

    def test_list_of_pairs(self):
        keys = np.array([0, 0], dtype=np.int32)
        values = {"v": np.array([1, 2], dtype=np.int32)}
        result = group_by(keys, values, [("v", "min"), ("v", "max")])
        assert list(result.output["min_v"]) == [1]
        assert list(result.output["max_v"]) == [2]

    def test_aggspec_passthrough(self):
        keys = np.array([0], dtype=np.int32)
        result = group_by(keys, {"v": np.array([9], dtype=np.int32)},
                          [AggSpec("v", "count")])
        assert list(result.output["count_v"]) == [1]

    def test_auto_strategy_correct(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 500, 10000).astype(np.int32)
        values = {"v": rng.integers(0, 100, 10000).astype(np.int32)}
        result = group_by(keys, values, {"v": "sum"})
        expected = reference_groupby(keys, values, {"v": "sum"})
        assert np.array_equal(result.output["sum_v"], expected["sum_v"])

    def test_named_strategy(self):
        keys = np.array([3, 3], dtype=np.int32)
        result = group_by(keys, {"v": np.array([1, 1], dtype=np.int32)},
                          {"v": "sum"}, algorithm="SORT-AGG")
        assert result.algorithm == "SORT-AGG"

    def test_large_input_sampled_estimate(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 32, 200000).astype(np.int32)
        result = group_by(keys, {"v": keys}, {"v": "count"})
        assert result.groups == 32
