"""Execution context binding a device, its memory, cost model and timeline.

A :class:`GPUContext` is the object algorithms and primitives operate on:
primitives submit :class:`~repro.gpusim.kernel.KernelStats` records and
allocate device arrays through it; algorithms open phases on it; the
bench harness reads simulated times and memory peaks from it afterwards.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Iterator, Optional

import numpy as np

from ..cancel import current_token
from ..obs.session import current_session
from .costmodel import CostModel
from .device import A100, DeviceSpec
from .kernel import KernelRecord, KernelStats
from .memory import BufferPool, DeviceMemory
from .profiler import Profiler
from .timeline import PhaseTimeline


class GPUContext:
    """All mutable state of one simulated device execution.

    Parameters
    ----------
    device:
        The :class:`DeviceSpec` to simulate (default: A100).
    mem_capacity:
        Override for the simulated memory capacity in bytes.  ``None``
        uses the device's physical capacity; pass e.g. ``0`` -> unlimited
        via ``enforce_capacity=False``.
    enforce_capacity:
        When False (default), allocations never raise OOM — convenient
        for scaled-down experiments while still tracking peaks.
    seed:
        Seed for the context RNG (used by the bucket-chain partitioner to
        simulate atomic non-determinism).
    trace:
        An explicit :class:`~repro.obs.session.TraceSession` to report
        into.  ``None`` (default) picks up the active session if one is
        installed (``with TraceSession(): ...``); tracing stays fully
        disabled otherwise.
    fault_plan:
        A :class:`~repro.faults.FaultPlan` to apply to this context.
        Transient kernel faults are injected at :meth:`submit` and
        recovered by retry-with-simulated-backoff (faulted attempts and
        backoff are charged to the timeline and traced as ``retry``
        spans); ``capacity_frac`` shrinks and *enforces* the simulated
        memory capacity so allocations feel OOM pressure.  Injection
        draws come from a private per-site stream — never from ``rng`` —
        so relational results are bit-identical with and without faults.
    fault_site:
        Stable site name for the fault-injection stream (defaults to
        ``"gpu"``; the cluster layer passes ``"gpu<d>"`` per device).
    cancel_token:
        A :class:`~repro.cancel.CancellationToken` checked at every
        kernel-submission boundary and charged with each kernel's
        simulated seconds (retries included).  The default picks up the
        ambient token installed by
        :meth:`CancellationToken.activated <repro.cancel.CancellationToken.activated>`
        if one is active; pass ``None`` explicitly to opt a context out
        (the cluster layer does — superstep boundaries charge the
        barrier-synchronous maximum instead of per-device sums).

    Submit kernels inside phases; the context accumulates simulated
    time and a per-phase breakdown:

    >>> from repro.gpusim import GPUContext, KernelStats
    >>> ctx = GPUContext()
    >>> with ctx.phase("match"):
    ...     seconds = ctx.submit(
    ...         KernelStats(name="probe", items=1 << 20, seq_read_bytes=8 << 20),
    ...         phase="match")
    >>> seconds > 0 and ctx.elapsed_seconds == seconds
    True
    >>> list(ctx.timeline.breakdown())
    ['match']
    """

    #: Sentinel: pick up the ambient cancellation token at construction.
    AMBIENT = object()

    def __init__(
        self,
        device: DeviceSpec = A100,
        mem_capacity: Optional[int] = None,
        enforce_capacity: bool = False,
        seed: Optional[int] = None,
        trace=None,
        fault_plan=None,
        fault_site: str = "gpu",
        cancel_token=AMBIENT,
    ):
        self.device = device
        capacity = mem_capacity if mem_capacity is not None else device.global_mem_bytes
        limit = capacity if enforce_capacity else None
        self.fault_plan = fault_plan
        self.faults = None
        if fault_plan is not None:
            self.faults = fault_plan.injector(fault_site)
            injected = fault_plan.capacity_bytes(device)
            if injected is not None:
                limit = injected if limit is None else min(limit, injected)
        self.trace = trace if trace is not None else current_session()
        # The pool mirrors its hit/miss counters into the trace session
        # as pool.* metrics (satellite of the tiering work: cache-layer
        # behavior must be visible in traces, not only on the objects).
        self.mem = DeviceMemory(limit, pool=BufferPool(sink=self.trace))
        self.cost = CostModel(device)
        self.cancel_token = (
            current_token() if cancel_token is GPUContext.AMBIENT else cancel_token
        )
        self.timeline = PhaseTimeline(trace=self.trace)
        self.profiler = Profiler(device)
        self.rng = np.random.default_rng(seed)

    # -- kernel submission ---------------------------------------------------

    def submit(self, stats: KernelStats, phase: Optional[str] = None, **extra) -> float:
        """Account one simulated kernel; returns its simulated seconds.

        With a fault plan attached, the kernel may transiently fault:
        each failed attempt re-charges the kernel's full time plus an
        exponential simulated backoff (kernels are idempotent, so the
        retry re-executes from the same inputs), then the successful
        attempt lands as usual.  The returned seconds are those of the
        successful attempt only; recovery time is visible on the
        timeline, the trace and the ``fault_*`` counters.

        With a cancellation token attached, the token is checked before
        the kernel launches and charged with its simulated seconds after
        it lands; each fault retry re-charges and re-checks the token,
        so a retry storm cannot run a query past its deadline unchecked.
        """
        token = self.cancel_token
        if token is not None:
            token.check(f"kernel:{stats.name}")
        stats.validate()
        seconds = self.cost.time(stats)
        if self.faults is not None:
            failures = self.faults.kernel_faults(stats.name)
            for attempt in range(failures):
                backoff = self.fault_plan.backoff_seconds(attempt)
                lost = seconds + backoff
                retry_stats = KernelStats(
                    name=f"retry:{stats.name}", launches=stats.launches
                )
                retry = KernelRecord(
                    stats=retry_stats,
                    seconds=lost,
                    phase=phase or "",
                    extra={"fault": "transient-kernel", "attempt": attempt + 1},
                )
                if self.trace is not None:
                    with self.trace.span(
                        f"retry:{stats.name}",
                        category="retry",
                        attempt=attempt + 1,
                        backoff_s=backoff,
                    ):
                        self.timeline.add(retry)
                        self.profiler.record(retry)
                        self.trace.record_kernel(retry, self.device)
                    self.trace.count("fault_kernel_retries")
                    self.trace.count("fault_retry_seconds", lost)
                    if attempt == 0:
                        self.trace.count("faults_injected_kernel")
                else:
                    self.timeline.add(retry)
                    self.profiler.record(retry)
                if token is not None:
                    # The retry's lost time counts against the deadline,
                    # and the next attempt re-checks the token.
                    token.charge(lost)
                    token.check(f"retry:{stats.name}")
        record = KernelRecord(stats=stats, seconds=seconds, phase=phase or "", extra=extra)
        self.timeline.add(record)
        self.profiler.record(record)
        if self.trace is not None:
            self.trace.record_kernel(record, self.device)
        if token is not None:
            token.charge(seconds)
        return seconds

    def submit_many(self, stats_list, phase: Optional[str] = None) -> float:
        """Account a batch of kernels in one call; returns total seconds.

        Semantically identical to submitting each record in order, but
        validation, cost evaluation and timeline/profiler bookkeeping are
        amortized across the batch.  Repeats of the *same*
        :class:`KernelStats` object (an LSD sort charging one identical
        kernel per pass) are costed once.  With a fault plan attached the
        batch falls back to per-kernel :meth:`submit` so injection sites
        and retry accounting stay unchanged.
        """
        if self.faults is not None:
            return sum(self.submit(stats, phase=phase) for stats in stats_list)
        # One cooperative check per batch: the batch is one submission
        # boundary, mirroring a single multi-kernel graph launch.
        if self.cancel_token is not None:
            self.cancel_token.check("kernel-batch")
        records = []
        prev: Optional[KernelStats] = None
        prev_seconds = 0.0
        total = 0.0
        phase_name = phase or ""
        for stats in stats_list:
            if stats is prev:
                seconds = prev_seconds
            else:
                stats.validate()
                seconds = self.cost.time(stats)
                prev, prev_seconds = stats, seconds
            total += seconds
            records.append(KernelRecord(stats=stats, seconds=seconds, phase=phase_name))
        self.timeline.add_many(records)
        self.profiler.record_many(records)
        if self.trace is not None:
            for record in records:
                self.trace.record_kernel(record, self.device)
        if self.cancel_token is not None:
            self.cancel_token.charge(total)
        return total

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Open an accounting phase for both time and memory peaks."""
        self.mem.set_phase(name)
        try:
            with self.timeline.phase(name):
                yield
        finally:
            self.mem.set_phase(None)

    # -- observability hooks ---------------------------------------------------

    def count(self, counter: str, value: float = 1.0) -> None:
        """Increment a named trace counter; no-op when tracing is off."""
        if self.trace is not None:
            self.trace.count(counter, value)

    def trace_span(self, name: str, category: str = "span", **args):
        """A span on the active trace, or a null context when off."""
        if self.trace is None:
            return nullcontext()
        return self.trace.span(name, category, **args)

    # -- conveniences ----------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        return self.timeline.total_seconds()

    def fork(self, seed: Optional[int] = None) -> "GPUContext":
        """A fresh context on the same device (new memory/timeline)."""
        return GPUContext(
            device=self.device, seed=seed, trace=self.trace,
            fault_plan=self.fault_plan, cancel_token=self.cancel_token,
        )
