"""TPC-H / TPC-DS join study: the Table 6 extracted joins.

Regenerates the Section 5.3 experiment interactively: the five joins
DuckDB's optimizer extracts from TPC-H Q7/Q18/Q19 and TPC-DS Q64/Q95,
with dictionary-encoded strings and the paper's 4-byte-key /
8-byte-non-key type mixture, run across all four implementations.

Run: ``python examples/tpch_join_study.py``
"""

from repro import A100, DictionaryEncoder, scaled_device
from repro.bench.harness import make_setup, run_algorithm
from repro.relational import reference_join
from repro.workloads import TPC_JOINS, generate_tpc_join

SCALE = 2.0 ** -10
setup = make_setup(SCALE)

print("Dictionary encoding (how string attributes become join columns):")
encoder = DictionaryEncoder()
ship_modes = ["AIR", "RAIL", "SHIP", "AIR", "TRUCK", "RAIL"]
codes = encoder.encode(ship_modes)
print(f"  {ship_modes}\n  -> {codes.tolist()} "
      f"(dictionary of {encoder.cardinality} values)\n")

header = f"{'join':5s} {'query':6s} {'|R|':>8s} {'|S|':>8s} {'|T|':>8s} " + "".join(
    f"{name:>10s}" for name in ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM")
) + f" {'winner':>8s}"
print(header)
print("-" * len(header))

for spec in TPC_JOINS:
    r, s = generate_tpc_join(spec, scale=SCALE, variant="mixed", seed=0)
    expected = reference_join(r, s)
    times = {}
    for name in ("SMJ-UM", "SMJ-OM", "PHJ-UM", "PHJ-OM"):
        result = run_algorithm(name, r, s, setup)
        assert result.output.equals_unordered(expected)  # always verify
        times[name] = result.total_seconds * 1e3
    winner = min(times, key=times.get)
    print(
        f"{spec.join_id:5s} {spec.query:6s} {r.num_rows:8d} {s.num_rows:8d} "
        f"{expected.num_rows:8d} "
        + "".join(f"{times[n]:10.4f}" for n in times)
        + f" {winner:>8s}"
    )

print(
    "\nObservations matching the paper (Section 5.3):\n"
    "  * PHJ-OM leads the large PK-FK joins (J1/J2/J4);\n"
    "  * J3's inputs are small enough that unclustered gathers stay in\n"
    "    L2, so GFUR variants keep up;\n"
    "  * J5 is a self FK-FK join producing ~12.5x its input — match\n"
    "    finding dominates and all four implementations converge."
)
