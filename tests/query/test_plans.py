"""Query plans: validation, execution, optimization passes."""

import numpy as np
import pytest

from repro.aggregation import AggSpec
from repro.errors import JoinConfigError
from repro.query import Aggregate, Join, Project, Scan, execute, validate_plan
from repro.relational import reference_groupby, reference_join
from repro.workloads import JoinWorkloadSpec, generate_join_workload


@pytest.fixture(scope="module")
def relations():
    return generate_join_workload(
        JoinWorkloadSpec(r_rows=2048, s_rows=4096, r_payload_columns=3,
                         s_payload_columns=2, seed=6)
    )


class TestValidation:
    def test_scan_valid(self, relations):
        r, _ = relations
        validate_plan(Scan(r))

    def test_empty_project_rejected(self, relations):
        r, _ = relations
        with pytest.raises(JoinConfigError, match="Project"):
            validate_plan(Project(Scan(r), columns=()))

    def test_aggregate_must_be_root(self, relations):
        r, s = relations
        inner = Aggregate(Scan(r), "r1", (AggSpec("r2", "sum"),))
        with pytest.raises(JoinConfigError, match="root"):
            validate_plan(Project(inner, columns=("x",)))

    def test_aggregate_needs_specs(self, relations):
        r, _ = relations
        with pytest.raises(JoinConfigError, match="AggSpec"):
            validate_plan(Aggregate(Scan(r), "r1", ()))


class TestExecution:
    def test_scan_returns_relation(self, relations):
        r, _ = relations
        result = execute(Scan(r))
        assert result.output is r
        assert result.total_seconds == 0.0

    def test_join_matches_reference(self, relations):
        r, s = relations
        result = execute(Join(Scan(r), Scan(s)), seed=0)
        assert result.output.equals_unordered(reference_join(r, s))

    def test_named_join_algorithm(self, relations):
        r, s = relations
        result = execute(Join(Scan(r), Scan(s), algorithm="SMJ-UM"), seed=0)
        assert "SMJ-UM" in result.trace[-1].description

    def test_project_over_scan(self, relations):
        r, _ = relations
        result = execute(Project(Scan(r), columns=("r2",)), seed=0)
        assert result.output.column_names == ["key", "r2"]

    def test_project_missing_column(self, relations):
        r, _ = relations
        with pytest.raises(JoinConfigError, match="missing"):
            execute(Project(Scan(r), columns=("nope",)), seed=0)

    def test_aggregate_over_scan(self, relations):
        _, s = relations
        plan = Aggregate(Scan(s), "s1", (AggSpec("s2", "sum"),))
        result = execute(plan, seed=0)
        expected = reference_groupby(
            s.column("s1"), {"s2": s.column("s2")}, {"s2": "sum"}
        )
        assert np.array_equal(result.output["sum_s2"], expected["sum_s2"])

    def test_full_pipeline(self, relations):
        r, s = relations
        plan = Aggregate(
            Join(Scan(r), Scan(s)), "r1", (AggSpec("s1", "sum"),)
        )
        result = execute(plan, seed=0)
        joined = reference_join(r, s)
        expected = reference_groupby(
            joined.column("r1"), {"s1": joined.column("s1")}, {"s1": "sum"}
        )
        assert np.array_equal(result.output["sum_s1"], expected["sum_s1"])

    def test_explain_lists_operators(self, relations):
        r, s = relations
        result = execute(Join(Scan(r), Scan(s)), seed=0)
        text = result.explain()
        assert "Scan" in text
        assert "Join" in text
        assert "total" in text


class TestOptimizations:
    def test_projection_pushed_into_join(self, relations):
        r, s = relations
        plan = Project(Join(Scan(r), Scan(s)), columns=("r1", "s1"))
        optimized = execute(plan, seed=0)
        literal = execute(plan, seed=0, optimize=False)
        assert optimized.output.equals_unordered(literal.output)
        assert optimized.total_seconds < literal.total_seconds
        assert "pushed" in optimized.trace[-1].description

    def test_aggregate_fused_into_join(self, relations):
        r, s = relations
        plan = Aggregate(Join(Scan(r), Scan(s)), "r1", (AggSpec("s1", "sum"),))
        optimized = execute(plan, seed=0)
        literal = execute(plan, seed=0, optimize=False)
        assert np.array_equal(
            optimized.output["sum_s1"], literal.output["sum_s1"]
        )
        assert optimized.total_seconds < literal.total_seconds
        assert any("Fused" in op.description for op in optimized.trace)

    def test_named_algorithms_survive_fusion(self, relations):
        r, s = relations
        plan = Aggregate(
            Join(Scan(r), Scan(s), algorithm="PHJ-OM"),
            "r1",
            (AggSpec("s1", "sum"),),
            algorithm="PART-AGG",
        )
        result = execute(plan, seed=0)
        fused_op = next(op for op in result.trace if "Fused" in op.description)
        assert "PHJ-OM" in fused_op.description
        assert "PART-AGG" in fused_op.description

    def test_join_of_joins(self, relations):
        """Plans compose: a join whose probe side is itself a join output."""
        r, s = relations
        first = Join(Scan(r), Scan(s), algorithm="PHJ-OM")
        joined = execute(first, seed=0).output
        # Use the first join's output as a probe side against r again.
        second = Join(Scan(r.rename({"r1": "q1", "r2": "q2", "r3": "q3"})),
                      Scan(joined))
        result = execute(second, seed=0)
        assert result.output.num_rows == joined.num_rows
