"""Trace exporters: Chrome-trace JSON and flat counter CSV.

The JSON exporter emits the Trace Event Format understood by
``chrome://tracing`` and by Perfetto's legacy importer
(https://ui.perfetto.dev): a flat list of complete (``"ph": "X"``)
events on one pid/tid, nested by interval containment on the simulated
clock.  Only the standard library is used, preserving the package's
numpy-only dependency footprint.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional

from .session import KERNEL, TraceSession

#: Trace-viewer timestamps are microseconds.
_US = 1e6


def _kernel_args(event) -> Dict[str, object]:
    stats = event.record.stats
    args: Dict[str, object] = {
        "phase": event.args.get("phase", ""),
        "device": event.device,
        "items": stats.items,
        "seq_read_bytes": stats.seq_read_bytes,
        "seq_write_bytes": stats.seq_write_bytes,
        "random_requests": stats.random_requests,
        "random_sector_touches": stats.random_sector_touches,
        "random_cold_sectors": stats.random_cold_sectors,
        "atomic_ops": stats.atomic_ops,
    }
    if stats.host_transfer_bytes:
        args["host_transfer_bytes"] = stats.host_transfer_bytes
    if stats.random_requests:
        args["sectors_per_request"] = round(stats.sectors_per_request, 3)
    return args


def session_events(
    session: TraceSession,
    pid: int = 0,
    tid: int = 0,
    clock_offset_s: float = 0.0,
) -> List[Dict[str, object]]:
    """One session's spans/kernels as complete (``"ph": "X"``) events.

    ``tid`` places the events on a named track and ``clock_offset_s``
    shifts the session's local clock onto a shared timeline — the hooks
    the multi-device exporter (:mod:`repro.cluster.trace`) uses to lay
    per-device sessions side by side.
    """
    events: List[Dict[str, object]] = []
    for event in session.events:
        end = event.end_s if event.end_s is not None else session.clock_s
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": event.name,
                "cat": event.category,
                "ts": (clock_offset_s + event.start_s) * _US,
                "dur": (end - event.start_s) * _US,
                "args": _kernel_args(event)
                if event.category == KERNEL
                else dict(event.args),
            }
        )
    return events


def thread_name_event(name: str, pid: int = 0, tid: int = 0) -> Dict[str, object]:
    """A Trace Event Format metadata record naming one track."""
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "name": "thread_name",
        "args": {"name": name},
    }


def to_chrome_trace(session: TraceSession) -> Dict[str, object]:
    """The session as a Trace Event Format document (a JSON-able dict)."""
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro simulated device: {session.name}"},
        }
    ]
    events.extend(session_events(session))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "session": session.name,
            "simulated_seconds": session.total_seconds,
            "counters": session.metrics.as_dict(),
        },
    }


def write_chrome_trace(session: TraceSession, path) -> Path:
    """Serialize the session to a ``chrome://tracing`` JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(session), indent=1))
    return path


def counters_csv(session: TraceSession) -> str:
    """The session's counters as ``counter,value`` CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["counter", "value"])
    for name, value in session.metrics.rows():
        writer.writerow([name, value])
    return buffer.getvalue()


def write_counters_csv(session: TraceSession, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(counters_csv(session))
    return path


def export_session(session: TraceSession, directory, name: Optional[str] = None) -> List[Path]:
    """Write the standard artifact triple for one session into *directory*.

    ``<name>.trace.json`` (Chrome trace), ``<name>.counters.csv`` and
    ``<name>.report.txt``; *name* defaults to the session's name.
    """
    from .report import write_report  # local import to avoid a cycle

    directory = Path(directory)
    name = name or session.name
    return [
        write_chrome_trace(session, directory / f"{name}.trace.json"),
        write_counters_csv(session, directory / f"{name}.counters.csv"),
        write_report(session, directory / f"{name}.report.txt"),
    ]
