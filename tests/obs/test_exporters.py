"""Chrome-trace JSON, counter CSV and per-operator report exporters."""

import csv
import json

import numpy as np
import pytest

from repro import AggSpec, Relation, TraceSession, join
from repro.obs import (
    counters_csv,
    export_session,
    per_operator_report,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.query import Aggregate, Join, Scan, execute


@pytest.fixture
def traced_query():
    rng = np.random.default_rng(3)
    customer = Relation.from_key_payloads(
        rng.permutation(1024).astype(np.int32),
        [rng.integers(0, 25, 1024).astype(np.int32)],
        payload_prefix="c",
        name="customer",
    )
    orders = Relation.from_key_payloads(
        rng.integers(0, 1024, 4096).astype(np.int32),
        [rng.integers(0, 100, 4096).astype(np.int32)] * 2,
        payload_prefix="o",
        name="orders",
    )
    plan = Aggregate(
        Join(Scan(customer), Scan(orders)),
        group_column="key",
        aggregates=(AggSpec("o1", "sum"),),
    )
    with TraceSession("q") as session:
        result = execute(plan)
    return session, result


class TestChromeTrace:
    def test_round_trips_through_json(self, traced_query):
        session, _ = traced_query
        text = json.dumps(to_chrome_trace(session))
        doc = json.loads(text)
        assert doc["traceEvents"]

    def test_event_schema(self, traced_query):
        session, _ = traced_query
        doc = to_chrome_trace(session)
        for event in doc["traceEvents"]:
            assert "ph" in event and "name" in event and "pid" in event
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0

    def test_kernel_events_carry_traffic_args(self, traced_query):
        session, _ = traced_query
        doc = to_chrome_trace(session)
        kernels = [e for e in doc["traceEvents"] if e.get("cat") == "kernel"]
        assert kernels
        for event in kernels:
            assert "seq_read_bytes" in event["args"]
            assert "phase" in event["args"]

    def test_durations_match_phase_breakdown(self, traced_query):
        """Per-phase sums of the exported kernels == the session's view."""
        session, _ = traced_query
        doc = to_chrome_trace(session)
        sums = {}
        for event in doc["traceEvents"]:
            if event.get("cat") != "kernel":
                continue
            phase = event["args"]["phase"]
            sums[phase] = sums.get(phase, 0.0) + event["dur"] / 1e6
        expected = session.phase_seconds()
        assert set(sums) == set(expected)
        for phase, seconds in expected.items():
            assert sums[phase] == pytest.approx(seconds, rel=1e-9)

    def test_durations_match_single_context_breakdown(self):
        """Acceptance: trace JSON phases == PhaseTimeline.breakdown()."""
        rng = np.random.default_rng(11)
        r = Relation.from_key_payloads(
            np.arange(512, dtype=np.int32),
            [rng.integers(0, 9, 512).astype(np.int32)] * 2,
            payload_prefix="r",
        )
        s = Relation.from_key_payloads(
            rng.integers(0, 512, 2048).astype(np.int32),
            [rng.integers(0, 9, 2048).astype(np.int32)] * 2,
            payload_prefix="s",
        )
        with TraceSession() as session:
            result = join(r, s, algorithm="SMJ-OM", seed=5)
        doc = to_chrome_trace(session)
        sums = {}
        for event in doc["traceEvents"]:
            if event.get("cat") == "kernel":
                phase = event["args"]["phase"]
                sums[phase] = sums.get(phase, 0.0) + event["dur"] / 1e6
        assert set(sums) == set(result.phase_seconds)
        for phase, seconds in result.phase_seconds.items():
            assert sums[phase] == pytest.approx(seconds, rel=1e-9)

    def test_write_creates_parent_dirs(self, traced_query, tmp_path):
        session, _ = traced_query
        path = write_chrome_trace(session, tmp_path / "deep" / "trace.json")
        assert json.loads(path.read_text())["traceEvents"]


class TestCountersCsv:
    def test_csv_parses_and_covers_counters(self, traced_query):
        session, _ = traced_query
        rows = list(csv.reader(counters_csv(session).splitlines()))
        assert rows[0] == ["counter", "value"]
        names = {row[0] for row in rows[1:]}
        assert {"seq_read_bytes", "bytes_streamed", "sectors_per_request"} <= names
        for row in rows[1:]:
            float(row[1])  # every value must be numeric


class TestReport:
    def test_report_names_operators(self, traced_query):
        session, result = traced_query
        text = per_operator_report(session)
        for op in result.trace:
            assert op.description.split(" <- ")[0] in text

    def test_report_contains_table4_layout(self, traced_query):
        session, _ = traced_query
        text = per_operator_report(session)
        for label in (
            "Total cycles",
            "Number of warp instructions",
            "Avg. cycles per warp instruction",
            "Memory reads (bytes)",
            "Avg. sectors read per load request",
        ):
            assert label in text

    def test_report_falls_back_to_algorithm_spans(self):
        rng = np.random.default_rng(1)
        r = Relation.from_key_payloads(
            np.arange(128, dtype=np.int32),
            [rng.integers(0, 9, 128).astype(np.int32)],
            payload_prefix="r",
        )
        s = Relation.from_key_payloads(
            rng.integers(0, 128, 256).astype(np.int32),
            [rng.integers(0, 9, 256).astype(np.int32)],
            payload_prefix="s",
        )
        with TraceSession() as session:
            join(r, s, algorithm="NPJ")
        text = per_operator_report(session)
        assert "join:NPJ" in text


class TestExportSession:
    def test_writes_artifact_triple(self, traced_query, tmp_path):
        session, _ = traced_query
        paths = export_session(session, tmp_path)
        names = {p.name for p in paths}
        assert names == {"q.trace.json", "q.counters.csv", "q.report.txt"}
        for path in paths:
            assert path.exists() and path.stat().st_size > 0
