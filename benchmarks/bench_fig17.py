"""Figure 17 / Table 6: TPC-H and TPC-DS joins.

Regenerates the experiment table into ``bench_results/fig17.txt``.
Run: ``pytest benchmarks/bench_fig17.py --benchmark-only -s``
"""

from repro.bench.experiments import fig17

from _common import SWEEP_SCALE, run_and_report


def test_fig17(benchmark):
    result = run_and_report(benchmark, fig17.run, SWEEP_SCALE)
    assert result.findings["phj_om_win_fraction"] >= 0.5
