"""Differential testing: every group-by strategy vs the numpy oracle.

The oracle is :func:`repro.relational.reference_groupby`.  Each
randomized workload is checked under every aggregate operator; integer
aggregates must match exactly, ``mean`` to float tolerance.
"""

import numpy as np
import pytest

from repro.aggregation import AggSpec, make_groupby_algorithm
from repro.relational import reference_groupby
from repro.workloads import generate_groupby_workload

from .conftest import GROUPBY_NAMES, GROUPBY_SPECS

OPS = ["sum", "count", "min", "max", "mean"]


def _check(strategy, keys, values, ops, seed=0):
    """Run *strategy* with one AggSpec per (column, op) and diff vs oracle."""
    specs = [AggSpec(column, op) for column, op in ops]
    result = make_groupby_algorithm(strategy).group_by(keys, values, specs, seed=seed)
    for column, op in ops:
        expected = reference_groupby(keys, values, {column: op})
        assert np.array_equal(result.output["group_key"], expected["group_key"])
        name = f"{op}_{column}"
        if op == "mean":
            np.testing.assert_allclose(result.output[name], expected[name])
        else:
            assert np.array_equal(result.output[name], expected[name]), name
    return result


@pytest.mark.parametrize("strategy", GROUPBY_NAMES)
@pytest.mark.parametrize("spec_name", sorted(GROUPBY_SPECS), ids=str)
def test_randomized_sweep_matches_oracle(strategy, spec_name):
    keys, values = generate_groupby_workload(GROUPBY_SPECS[spec_name])
    ops = [("v1", op) for op in OPS]
    result = _check(strategy, keys, values, ops, seed=3)
    assert result.rows == keys.size
    assert result.groups == np.unique(keys).size


@pytest.mark.parametrize("strategy", GROUPBY_NAMES)
def test_multi_column_mixed_ops(strategy):
    rng = np.random.default_rng(21)
    keys = rng.integers(0, 97, 3000).astype(np.int32)
    values = {
        "a": rng.integers(-50, 50, 3000).astype(np.int32),
        "b": rng.integers(0, 10**6, 3000).astype(np.int64),
    }
    _check(strategy, keys, values, [("a", "sum"), ("a", "min"), ("b", "max"), ("b", "mean")])


class TestEdgeCases:
    @pytest.mark.parametrize("strategy", GROUPBY_NAMES)
    def test_all_duplicate_keys(self, strategy):
        keys = np.full(500, 13, dtype=np.int32)
        values = {"v": np.arange(500, dtype=np.int32)}
        result = _check(strategy, keys, values, [("v", op) for op in OPS])
        assert result.groups == 1

    @pytest.mark.parametrize("strategy", GROUPBY_NAMES)
    def test_all_distinct_keys(self, strategy):
        rng = np.random.default_rng(22)
        keys = rng.permutation(700).astype(np.int64)
        values = {"v": rng.integers(0, 9, 700).astype(np.int64)}
        result = _check(strategy, keys, values, [("v", "sum"), ("v", "count")])
        assert result.groups == 700

    @pytest.mark.parametrize("strategy", GROUPBY_NAMES)
    def test_heavy_zipf_skew(self, strategy):
        """One dominant group plus a long tail (atomic-contention regime)."""
        rng = np.random.default_rng(23)
        keys = np.concatenate(
            [np.zeros(2000, dtype=np.int32), rng.integers(1, 400, 200).astype(np.int32)]
        )
        values = {"v": rng.integers(0, 100, keys.size).astype(np.int32)}
        _check(strategy, keys, values, [("v", op) for op in OPS])

    @pytest.mark.parametrize("strategy", GROUPBY_NAMES)
    def test_two_rows_same_group(self, strategy):
        keys = np.array([9, 9], dtype=np.int32)
        values = {"v": np.array([1, 5], dtype=np.int32)}
        result = _check(strategy, keys, values, [("v", "mean"), ("v", "max")])
        assert result.groups == 1

    @pytest.mark.parametrize("strategy", GROUPBY_NAMES)
    def test_sparse_key_domain(self, strategy):
        """Keys far apart in value (defeats dense-array shortcuts)."""
        rng = np.random.default_rng(24)
        domain = np.array([0, 1 << 10, 1 << 20, (1 << 31) - 1], dtype=np.int64)
        keys = domain[rng.integers(0, domain.size, 1000)]
        values = {"v": rng.integers(0, 100, 1000).astype(np.int64)}
        _check(strategy, keys, values, [("v", "sum"), ("v", "min"), ("v", "max")])
