"""The recovery-overhead section of the per-operator report."""

from repro.faults import FaultPlan
from repro.gpusim import GPUContext, KernelStats
from repro.obs import TraceSession, per_operator_report, recovery_summary


def _run_some_kernels(fault_plan=None):
    with TraceSession("report") as session:
        ctx = GPUContext(fault_plan=fault_plan)
        for i in range(40):
            ctx.submit(KernelStats(name=f"k{i}", items=1 << 12,
                                   seq_read_bytes=1 << 16))
    return session


def test_fault_free_session_has_no_recovery_section():
    session = _run_some_kernels()
    assert recovery_summary(session) == []
    assert "recovery overhead" not in per_operator_report(session)


def test_recovery_section_breaks_down_fault_kinds():
    session = _run_some_kernels(FaultPlan(seed=3, kernel_fault_rate=0.4))
    lines = recovery_summary(session)
    text = "\n".join(lines)
    assert "-- recovery overhead --" in text
    assert "kernel faults injected" in text
    assert "kernel retries" in text
    assert "kernel retry seconds" in text
    assert "total recovery seconds" in text
    assert "recovery share of session clock" in text
    # Zero counters stay out of the table (no cluster faults here).
    assert "superstep replays" not in text
    assert per_operator_report(session).endswith(text)
