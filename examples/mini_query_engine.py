"""Mini query engine: a TPC-H-Q3-shaped plan end to end.

Builds the logical plan for

    SELECT o.custkey, SUM(l.extendedprice)
    FROM customer c JOIN orders o ON c.custkey = o.custkey
    GROUP BY o.custkey

over synthetic tables, executes it with and without the optimizer
(projection pushdown + join-aggregate fusion), and prints both traces —
the end-to-end story the paper's introduction motivates: relational
operators living on the GPU next to their consumers.

Run: ``python examples/mini_query_engine.py``

Pass ``--trace trace.json`` to also capture the optimized run as a
Chrome-trace file (open in ``chrome://tracing`` or
https://ui.perfetto.dev) and print the per-operator counter report.
"""

import sys

if "--trace" in sys.argv and sys.argv.index("--trace") + 1 >= len(sys.argv):
    sys.exit("usage: python examples/mini_query_engine.py [--trace PATH]")

import numpy as np

from repro import A100, AggSpec, JoinConfig, Relation, scaled_device
from repro.query import Aggregate, Join, Scan, execute

SCALE = 2.0 ** -9
DEVICE = scaled_device(A100, SCALE)
CONFIG = JoinConfig(
    tuples_per_partition=max(32, int(4096 * SCALE)),
    bucket_tuples=max(32, int(4096 * SCALE)),
)

rng = np.random.default_rng(42)
num_customers = 1 << 16
num_orders = 1 << 18

customer = Relation.from_key_payloads(
    rng.permutation(num_customers).astype(np.int32),
    [
        rng.integers(0, 25, num_customers).astype(np.int32),   # nation
        rng.integers(0, 5, num_customers).astype(np.int32),    # segment
    ],
    payload_prefix="c",
    name="customer",
)
orders = Relation.from_key_payloads(
    rng.integers(0, num_customers, num_orders).astype(np.int32),
    [
        rng.integers(900, 105000, num_orders).astype(np.int32),  # price
        rng.integers(0, 2556, num_orders).astype(np.int32),      # orderdate
        rng.integers(0, 5, num_orders).astype(np.int32),         # priority
    ],
    payload_prefix="o",
    name="orders",
)

plan = Aggregate(
    Join(Scan(customer), Scan(orders)),   # customer is the PK side
    group_column="key",                   # group by the customer key
    aggregates=(AggSpec("o1", "sum"), AggSpec("o1", "count")),
)

print("plan:  Aggregate(SUM(o1), COUNT(o1) BY key) <- Join <- Scan x2\n")
for label, optimize in (("optimized (fusion + pushdown)", True),
                        ("literal plan", False)):
    result = execute(plan, device=DEVICE, config=CONFIG, seed=0, optimize=optimize)
    print(f"--- {label}")
    print(result.explain())
    print()

optimized = execute(plan, device=DEVICE, config=CONFIG, seed=0)
literal = execute(plan, device=DEVICE, config=CONFIG, seed=0, optimize=False)
assert np.array_equal(optimized.output["sum_o1"], literal.output["sum_o1"])
print(
    f"optimizer speedup: {literal.total_seconds / optimized.total_seconds:.2f}x "
    f"with identical results ({optimized.output['group_key'].size} groups)"
)
top = int(np.argmax(optimized.output["sum_o1"]))
print(
    f"top customer: key={optimized.output['group_key'][top]} "
    f"revenue={optimized.output['sum_o1'][top]} "
    f"orders={optimized.output['count_o1'][top]}"
)

if "--trace" in sys.argv:
    from repro import TraceSession, per_operator_report, write_chrome_trace

    trace_path = sys.argv[sys.argv.index("--trace") + 1]
    with TraceSession("mini_query_engine") as session:
        execute(plan, device=DEVICE, config=CONFIG, seed=0)
    path = write_chrome_trace(session, trace_path)
    print(f"\nwrote {path} — open in chrome://tracing or ui.perfetto.dev")
    print(per_operator_report(session))
