"""Integer hash functions used by the hash-join and group-by kernels.

The GPU implementations in the paper hash keys to pick partitions and
hash-table slots.  We provide the same family of cheap multiplicative
hashes (Knuth/Fibonacci hashing and a finalizer-style mixer), vectorized
over numpy arrays and stable across runs.
"""

from __future__ import annotations

import numpy as np

#: Knuth's multiplicative constant (2^32 / phi), used by many GPU joins.
KNUTH_MULT_32 = np.uint32(2654435761)
#: 64-bit Fibonacci multiplier.
FIB_MULT_64 = np.uint64(11400714819323198485)


def multiplicative_hash(keys: np.ndarray) -> np.ndarray:
    """Fibonacci/Knuth multiplicative hash, returned as uint64.

    Cheap (one multiply) and adequate for power-of-two table sizes when
    the high bits are used; matches the style of hash used by
    shared-memory hash tables in GPU joins.
    """
    k = keys.astype(np.uint64, copy=False)
    with np.errstate(over="ignore"):
        return k * FIB_MULT_64


def mix_hash(keys: np.ndarray) -> np.ndarray:
    """A stronger 64-bit finalizer-style mixer (splitmix64 finalizer).

    Used where key bits are correlated with partition bits (e.g. dense
    primary keys) and a plain multiplicative hash would skew buckets.
    """
    z = keys.astype(np.uint64, copy=False).copy()
    with np.errstate(over="ignore"):
        z ^= z >> np.uint64(30)
        z *= np.uint64(0xBF58476D1CE4E5B9)
        z ^= z >> np.uint64(27)
        z *= np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
    return z


def hash_to_slots(keys: np.ndarray, capacity: int) -> np.ndarray:
    """Map keys to slots of a power-of-two sized hash table.

    Uses the high bits of the multiplicative hash, which distributes
    dense keys far better than the low bits.
    """
    if capacity <= 0 or capacity & (capacity - 1):
        raise ValueError(f"capacity must be a positive power of two, got {capacity}")
    bits = int(capacity).bit_length() - 1
    h = multiplicative_hash(keys)
    return (h >> np.uint64(64 - bits)).astype(np.int64)


def radix_digit(keys: np.ndarray, start_bit: int, num_bits: int) -> np.ndarray:
    """Extract the radix digit ``keys[start_bit : start_bit + num_bits]``.

    Operates on the two's-complement bit pattern (keys are cast to
    unsigned), matching the RADIX-PARTITION primitive of the paper.
    """
    if num_bits <= 0:
        raise ValueError("num_bits must be positive")
    mask = np.uint64((1 << num_bits) - 1)
    u = keys.astype(np.uint64, copy=False)
    return ((u >> np.uint64(start_bit)) & mask).astype(np.int64)
