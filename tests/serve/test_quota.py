"""Tenant quotas and the server-wide retry budget.

The two starvation directions pinned here:

* a greedy tenant at its cap cannot monopolize streams — its queued
  entries are *skipped* (deferred), so other tenants keep flowing;
* fault-retry storms cannot monopolize the device — once the retry
  budget is spent, further fault-injecting submissions are turned away
  with a typed rejection while clean queries still run.
"""

import pytest

from repro.errors import ServeConfigError
from repro.faults import FaultPlan
from repro.query.plan import Join, Scan
from repro.serve import QueryServer, RetryBudget, TenantQuota


@pytest.fixture
def plan(r, s):
    return Join(Scan(r), Scan(s))


def peak_overlap(outcomes, tenant):
    """Max queries of *tenant* simultaneously in service."""
    events = []
    for o in outcomes:
        if o.tenant == tenant and o.stream >= 0:
            events.append((o.admitted_s, 1))
            events.append((o.finish_s, -1))
    peak = live = 0
    for _, delta in sorted(events):  # departures first at equal instants
        live += delta
        peak = max(peak, live)
    return peak


# -- quota objects ------------------------------------------------------------


def test_quota_validation():
    with pytest.raises(ServeConfigError):
        TenantQuota(max_concurrent=0)
    with pytest.raises(ServeConfigError):
        TenantQuota(max_reserved_bytes=-1)
    with pytest.raises(ServeConfigError):
        TenantQuota(max_queue_depth=-1)


def test_retry_budget_arithmetic():
    budget = RetryBudget(initial_s=1.0, refill_per_s=0.5)
    assert budget.allowance_s(0.0) == 1.0
    assert budget.allowance_s(2.0) == 2.0
    budget.spend(1.5)
    assert budget.remaining_s(0.0) == 0.0  # clamped, never negative
    assert budget.remaining_s(2.0) == pytest.approx(0.5)
    assert budget.exhausted(0.0) and not budget.exhausted(2.0)
    budget.spend(-1.0)  # negative spends are ignored
    assert budget.spent_s == 1.5


# -- concurrency caps ---------------------------------------------------------


def test_greedy_tenant_capped_without_starving_the_polite_one(plan):
    server = QueryServer(
        streams=4,
        seed=0,
        queue_depth=16,
        enable_result_cache=False,
        tenants={"greedy": TenantQuota(max_concurrent=1)},
    )
    for _ in range(6):
        server.submit(plan, at_s=0.0, tenant="greedy")
    for _ in range(3):
        server.submit(plan, at_s=0.0, tenant="polite")
    outcomes = server.run()
    assert all(o.status == "completed" for o in outcomes)
    # The cap binds: never more than one greedy query in service, while
    # the polite tenant uses the streams the cap left free.
    assert peak_overlap(outcomes, "greedy") == 1
    assert peak_overlap(outcomes, "polite") > 1
    assert server.metrics.value("serve.quota_deferrals") > 0
    assert server.tenants["greedy"].quota_deferrals > 0
    # The polite tenant is not stuck behind the greedy backlog.
    polite_last = max(o.finish_s for o in outcomes if o.tenant == "polite")
    greedy_last = max(o.finish_s for o in outcomes if o.tenant == "greedy")
    assert polite_last < greedy_last


def test_reserved_bytes_cap_defers_admission(plan):
    estimate = QueryServer(streams=4, seed=0).estimate_bytes(plan)
    server = QueryServer(
        streams=4,
        seed=0,
        enable_result_cache=False,
        tenants={"hungry": TenantQuota(max_reserved_bytes=estimate)},
    )
    for _ in range(3):
        server.submit(plan, at_s=0.0, tenant="hungry")
    outcomes = server.run()
    assert all(o.status == "completed" for o in outcomes)
    assert peak_overlap(outcomes, "hungry") == 1  # one reservation at a time


def test_tenant_queue_depth_rejects_only_that_tenant(plan):
    server = QueryServer(
        streams=1,
        seed=0,
        queue_depth=8,
        enable_result_cache=False,
        tenants={"chatty": TenantQuota(max_concurrent=1, max_queue_depth=1)},
    )
    ids = [server.submit(plan, at_s=0.0, tenant="chatty") for _ in range(4)]
    other = server.submit(plan, at_s=0.0, tenant="polite")
    outcomes = {o.query_id: o for o in server.run()}
    rejected = [i for i in ids if outcomes[i].status == "rejected"]
    assert rejected  # the chatty overflow bounced at its own bound
    for i in rejected:
        assert outcomes[i].error.reason == "tenant-queue-full"
    assert outcomes[other].status == "completed"  # global queue had room
    assert server.tenants["chatty"].rejected == len(rejected)


def test_set_quota_replaces_and_clears(plan):
    server = QueryServer(streams=4, seed=0)
    server.set_quota("t", TenantQuota(max_concurrent=1))
    assert server.quotas["t"].max_concurrent == 1
    server.set_quota("t", None)
    assert "t" not in server.quotas


def test_tenant_accounting_balances(plan):
    server = QueryServer(
        streams=2, seed=0, tenants={"a": TenantQuota(max_concurrent=1)}
    )
    for _ in range(3):
        server.submit(plan, at_s=0.0, tenant="a")
    server.run()
    state = server.tenants["a"]
    assert state.submitted == 3 and state.completed == 3
    assert state.queued == 0 and state.inflight == 0
    assert state.reserved_bytes == 0
    snapshot = state.snapshot()
    assert snapshot["completed"] == 3


# -- the retry budget ---------------------------------------------------------


def test_exhausted_budget_rejects_faulty_work_but_not_clean_work(plan):
    storm = FaultPlan(seed=9, kernel_fault_rate=0.6)
    server = QueryServer(streams=2, seed=0, retry_budget=0.0)
    faulty = server.submit(plan, at_s=0.0, fault_plan=storm)
    clean = server.submit(plan, at_s=0.0)
    outcomes = {o.query_id: o for o in server.run()}
    assert outcomes[faulty].status == "rejected"
    assert outcomes[faulty].error.reason == "retry-budget"
    assert outcomes[clean].status == "completed"
    assert server.retry_budget.rejections == 1
    assert server.metrics.value("serve.rejected_retry_budget") == 1.0


def test_budget_spend_comes_from_measured_retry_seconds(plan):
    storm = FaultPlan(seed=9, kernel_fault_rate=0.6)
    server = QueryServer(streams=2, seed=0, retry_budget=1e6)
    server.submit(plan, fault_plan=storm)
    (outcome,) = server.run()
    assert outcome.status == "completed"
    assert server.retry_budget.spent_s > 0
    assert server.metrics.value("serve.retry_budget_spent_s") == pytest.approx(
        server.retry_budget.spent_s
    )


def test_refill_reopens_the_budget_on_the_simulated_clock(plan):
    storm = FaultPlan(seed=9, kernel_fault_rate=0.6)
    probe = QueryServer(streams=2, seed=0, retry_budget=1e6)
    probe.submit(plan, fault_plan=storm)
    probe.run()
    storm_cost = probe.retry_budget.spent_s

    server = QueryServer(
        streams=2,
        seed=0,
        retry_budget=RetryBudget(initial_s=storm_cost * 0.5,
                                 refill_per_s=storm_cost / 10.0),
    )
    first = server.submit(plan, at_s=0.0, fault_plan=storm)
    second = server.submit(plan, at_s=1.0, fault_plan=storm)  # budget spent
    third = server.submit(plan, at_s=100.0, fault_plan=storm)  # refilled
    outcomes = {o.query_id: o for o in server.run()}
    assert outcomes[first].status == "completed"
    assert outcomes[second].status == "rejected"
    assert outcomes[second].error.reason == "retry-budget"
    assert outcomes[third].status == "completed"


def test_fault_free_plans_never_touch_the_budget(plan):
    inert = FaultPlan(seed=9)  # no rates set: injects nothing
    server = QueryServer(streams=2, seed=0, retry_budget=0.0)
    server.submit(plan, fault_plan=inert)
    (outcome,) = server.run()
    assert outcome.status == "completed"
    assert server.retry_budget.rejections == 0
