"""Multi-track Chrome-trace export of cluster runs."""

import json

import numpy as np
import pytest

from repro.cluster import cluster_chrome_trace, sharded_join, write_cluster_trace
from repro.workloads import JoinWorkloadSpec, generate_join_workload


@pytest.fixture(scope="module")
def join_result():
    r, s = generate_join_workload(
        JoinWorkloadSpec(r_rows=512, s_rows=2048, r_payload_columns=2,
                         s_payload_columns=2, seed=3)
    )
    return sharded_join(r, s, algorithm="PHJ-OM", num_devices=4, seed=3)


def test_tracks_cover_devices_plus_interconnect(join_result):
    doc = cluster_chrome_trace(join_result.cluster, "test")
    names = {
        e["tid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_name"
    }
    assert set(names) == {0, 1, 2, 3, 4}
    assert names[0].startswith("gpu0")
    assert "interconnect" in names[4]


def test_spans_land_on_their_device_track(join_result):
    doc = cluster_chrome_trace(join_result.cluster, "test")
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    device_tids = {e["tid"] for e in spans if e["cat"] != "transfer"
                   and not e["name"].startswith("step:shuffle:")}
    assert device_tids >= {0, 1, 2, 3}
    transfers = [e for e in spans if e["cat"] == "transfer"]
    assert transfers, "expected per-transfer spans"
    assert {e["tid"] for e in transfers} == {4}
    assert all(e["args"]["bytes"] > 0 for e in transfers)


def test_transfer_bytes_match_link_accounting(join_result):
    doc = cluster_chrome_trace(join_result.cluster, "test")
    transfers = [
        e for e in doc["traceEvents"]
        if e.get("ph") == "X" and e["cat"] == "transfer"
    ]
    by_link = {}
    for e in transfers:
        key = (e["args"]["src"], e["args"]["dst"])
        by_link[key] = by_link.get(key, 0) + e["args"]["bytes"]
    matrix = join_result.cluster.link_bytes()
    for (src, dst), nbytes in by_link.items():
        assert matrix[src, dst] == nbytes
    assert sum(by_link.values()) == matrix.sum()
    assert doc["otherData"]["shuffle_bytes_total"] == int(matrix.sum())


def test_steps_are_laid_out_on_the_cluster_clock(join_result):
    doc = cluster_chrome_trace(join_result.cluster, "test")
    step_spans = [
        e for e in doc["traceEvents"]
        if e.get("ph") == "X" and e["cat"] == "cluster-step"
    ]
    starts = sorted({e["ts"] for e in step_spans})
    expected = sorted({s.start_s * 1e6 for s in join_result.cluster.steps})
    assert starts == pytest.approx(expected)


def test_write_cluster_trace_roundtrips(join_result, tmp_path):
    path = write_cluster_trace(join_result.cluster, tmp_path / "c.trace.json")
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
    assert doc["otherData"]["simulated_seconds"] == pytest.approx(
        join_result.total_seconds
    )
