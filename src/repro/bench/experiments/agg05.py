"""agg05: aggregation-planner validation.

Runs the three strategies over a cardinality x skew x width grid and
checks the planner's pick against the measured winner, with the same
regret tolerance as the join planner's Figure 18 validation.
"""

from __future__ import annotations

from itertools import product

from ...aggregation.base import AggSpec
from ...aggregation.planner import (
    GroupByWorkloadProfile,
    make_groupby_algorithm,
    recommend_groupby_algorithm,
)
from ...workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 26
GROUP_FRACTIONS = (2 ** -16, 2 ** -8, 2 ** -2)
ZIPF_FACTORS = (0.0, 1.5)
COLUMN_COUNTS = (1, 4)
ALGORITHMS = ("HASH-AGG", "SORT-AGG", "PART-AGG")
TOLERANCE = 0.15


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    result = ExperimentResult(
        experiment_id="agg05",
        title="Aggregation planner validation",
        headers=["groups", "zipf", "cols", "winner", "planner", "regret", "ok"],
    )
    agreements, cases = 0, 0
    for fraction, zipf, cols in product(GROUP_FRACTIONS, ZIPF_FACTORS, COLUMN_COUNTS):
        groups = max(4, int(rows * fraction))
        keys, values = generate_groupby_workload(
            GroupByWorkloadSpec(
                rows=rows, groups=groups, value_columns=cols,
                zipf_factor=zipf, seed=seed,
            )
        )
        aggs = [AggSpec(f"v{i + 1}", "sum") for i in range(cols)]
        times = {
            name: make_groupby_algorithm(name)
            .group_by(keys, values, aggs, device=setup.device, seed=seed)
            .total_seconds
            for name in ALGORITHMS
        }
        winner = min(times, key=times.get)
        profile = GroupByWorkloadProfile(
            rows=rows, estimated_groups=groups, value_columns=cols,
            zipf_factor=zipf,
        )
        pick = recommend_groupby_algorithm(profile, device=setup.device).algorithm
        regret = times[pick] / times[winner] - 1.0
        ok = regret <= TOLERANCE
        agreements += ok
        cases += 1
        result.add_row(groups, zipf, cols, winner, pick, regret, ok)
    result.findings["planner_accuracy"] = agreements / cases
    return result
