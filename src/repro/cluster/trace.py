"""Chrome-trace export for cluster executions.

Lays one :class:`~repro.cluster.context.ClusterContext` run out as a
multi-track Trace Event Format document: one named track (``tid``) per
device carrying that device's kernels and phase spans, plus one
``interconnect`` track carrying a span per device-to-device transfer
with its exact byte count.  Every compute step's per-device sessions
record on device-local clocks starting at zero, so the exporter shifts
them by the step's position on the cluster clock — barriers between
supersteps show up as the idle gaps a real multi-GPU profiler capture
would show.

Open the result in ``chrome://tracing`` or https://ui.perfetto.dev,
exactly like the single-device traces from
:func:`repro.obs.export.write_chrome_trace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from ..obs.export import session_events, thread_name_event
from .context import ClusterContext

#: Trace-viewer timestamps are microseconds.
_US = 1e6


def cluster_chrome_trace(
    cluster: ClusterContext, name: str = "cluster"
) -> Dict[str, object]:
    """The cluster run as a Trace Event Format document (JSON-able dict).

    Track layout: ``tid 0..N-1`` are the devices (named
    ``gpu<d> (<device name>)``), ``tid N`` is the interconnect.  Spans
    additionally include one ``step:`` span per superstep on the track
    of each participating device.
    """
    n = cluster.num_devices
    interconnect_tid = n
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro simulated cluster: {name}"},
        }
    ]
    for d in range(n):
        events.append(
            thread_name_event(f"gpu{d} ({cluster.device.name})", tid=d)
        )
    events.append(
        thread_name_event(f"interconnect ({cluster.interconnect.name})",
                          tid=interconnect_tid)
    )

    for step in cluster.steps:
        if step.kind == "compute":
            for d, session in enumerate(step.sessions):
                events.append(
                    {
                        "ph": "X",
                        "pid": 0,
                        "tid": d,
                        "name": f"step:{step.name}",
                        "cat": "cluster-step",
                        "ts": step.start_s * _US,
                        "dur": session.total_seconds * _US,
                        "args": {"device": d, "step_seconds": step.seconds},
                    }
                )
                events.extend(
                    session_events(session, tid=d, clock_offset_s=step.start_s)
                )
        else:
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": interconnect_tid,
                    "name": f"step:{step.name}",
                    "cat": "cluster-step",
                    "ts": step.start_s * _US,
                    "dur": step.seconds * _US,
                    "args": {
                        "links": len(step.transfers),
                        "bytes": int(sum(t.nbytes for t in step.transfers)),
                    },
                }
            )
            for t in step.transfers:
                events.append(
                    {
                        "ph": "X",
                        "pid": 0,
                        "tid": interconnect_tid,
                        "name": f"{t.label}: gpu{t.src}->gpu{t.dst}",
                        "cat": "transfer",
                        "ts": step.start_s * _US,
                        "dur": t.seconds * _US,
                        "args": {"src": t.src, "dst": t.dst, "bytes": t.nbytes},
                    }
                )

    matrix = cluster.link_bytes()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "cluster": cluster.spec.describe(),
            "simulated_seconds": cluster.total_seconds,
            "shuffle_bytes_total": int(matrix.sum()),
            "link_bytes": matrix.tolist(),
        },
    }


def write_cluster_trace(cluster: ClusterContext, path, name: str = "") -> Path:
    """Serialize a cluster run to a ``chrome://tracing`` JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = cluster_chrome_trace(cluster, name or path.stem)
    path.write_text(json.dumps(doc, indent=1))
    return path
