"""Out-of-core joins: inputs larger than device memory.

The paper scopes itself to in-memory joins and lists the out-of-memory
case as related work ([35, 55, 60]).  This module implements the
standard staging design those systems use, on top of any in-memory join
of this library:

1. if the whole join (inputs + output + auxiliary working set) fits the
   device budget, transfer once and run the in-memory join;
2. otherwise, radix-co-partition R and S *on the host* into ``C``
   chunk pairs such that each pair's join fits, then for each pair:
   transfer the chunks over the interconnect, join on device, transfer
   the partial result back, release.

Because partitioning is on (hashed) key bits, matches only exist within
co-chunks, so concatenating the partial outputs yields exactly the
in-memory join's result.  Host partitioning streams at host-memory
bandwidth; transfers ride the device's ``interconnect_bandwidth``
(PCIe 4.0 x16 by default) — the dominant cost, which is why out-of-core
throughput falls off a cliff at the memory boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import JoinConfigError
from ..gpusim.context import GPUContext
from ..gpusim.device import A100, CPU_SERVER, DeviceSpec
from ..gpusim.kernel import KernelStats
from ..primitives.radix_partition import partition_codes
from ..relational.relation import Relation
from .base import JoinAlgorithm, JoinResult

#: Fraction of the device budget the planner leaves for auxiliary
#: structures and the output when sizing chunks.
WORKING_SET_FACTOR = 3.0

#: Upper bound on the staging fan-out; one host partitioning pass with
#: 8 radix bits yields at most 256 co-chunks (matching the device
#: partitioner's per-pass limit).
MAX_CHUNKS = 256


@dataclass
class OutOfCoreResult:
    """Outcome of a (possibly) staged join."""

    output: Relation
    chunk_results: List[JoinResult]
    num_chunks: int
    host_partition_seconds: float
    transfer_seconds: float
    r_rows: int
    s_rows: int
    staged: bool
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def device_seconds(self) -> float:
        return sum(res.total_seconds for res in self.chunk_results)

    @property
    def total_seconds(self) -> float:
        return self.host_partition_seconds + self.transfer_seconds + self.device_seconds

    @property
    def matches(self) -> int:
        return self.output.num_rows

    @property
    def throughput_tuples_per_s(self) -> float:
        if self.total_seconds == 0:
            return float("inf")
        return (self.r_rows + self.s_rows) / self.total_seconds


def estimate_join_footprint(r: Relation, s: Relation) -> int:
    """Bytes a monolithic in-memory join needs on the device."""
    input_bytes = r.total_bytes + s.total_bytes
    # Output at ~|S| rows of the combined schema + auxiliary working set.
    row_bytes = r.total_bytes // max(1, r.num_rows) + s.total_bytes // max(1, s.num_rows)
    output_bytes = s.num_rows * row_bytes
    return int((input_bytes + output_bytes) * WORKING_SET_FACTOR / 2)


class OutOfCoreJoin:
    """Stage a join through host memory when it exceeds the device budget."""

    def __init__(
        self,
        inner: JoinAlgorithm,
        device_budget_bytes: Optional[int] = None,
        host_device: DeviceSpec = CPU_SERVER,
        fault_plan=None,
        min_chunks: int = 1,
    ):
        self.inner = inner
        self.device_budget_bytes = device_budget_bytes
        self.host_device = host_device
        #: Forwarded (without its capacity pressure) into the per-chunk
        #: device contexts, so transient kernel faults keep injecting
        #: inside the degraded execution it exists to escape.
        self.fault_plan = None if fault_plan is None else fault_plan.without_capacity()
        #: Floor on the fan-out; the graceful-degradation ladder passes 2
        #: so an *observed* OOM always re-plans with more passes even if
        #: the footprint estimate would say "fits".
        self.min_chunks = min_chunks

    # -- planning ------------------------------------------------------------

    def plan_chunks(self, r: Relation, s: Relation, budget: int) -> int:
        """Number of co-chunks (a power of two; 1 = fits in memory)."""
        footprint = estimate_join_footprint(r, s)
        if footprint <= budget:
            chunks = 1
        else:
            ratio = footprint / budget
            chunks = 1 << max(1, math.ceil(math.log2(ratio)))
        chunks = max(chunks, self.min_chunks)
        return min(MAX_CHUNKS, 1 << math.ceil(math.log2(max(1, chunks))))

    # -- execution ------------------------------------------------------------

    def join(
        self,
        r: Relation,
        s: Relation,
        device: DeviceSpec = A100,
        seed: Optional[int] = None,
    ) -> OutOfCoreResult:
        if self.device_budget_bytes is None:
            budget = device.global_mem_bytes
        else:
            budget = self.device_budget_bytes
        if budget <= 0:
            raise JoinConfigError("device budget must be positive")
        num_chunks = self.plan_chunks(r, s, budget)

        host_ctx = GPUContext(device=self.host_device, seed=seed)
        transfer_ctx = GPUContext(device=device, seed=seed)

        if num_chunks == 1:
            self._charge_transfer(
                transfer_ctx, r.total_bytes + s.total_bytes, "transfer_in"
            )
            result = self.inner.join(
                r, s, ctx=self._chunk_context(device, seed, 0)
            )
            self._charge_transfer(transfer_ctx, result.output.total_bytes, "transfer_out")
            return OutOfCoreResult(
                output=result.output,
                chunk_results=[result],
                num_chunks=1,
                host_partition_seconds=0.0,
                transfer_seconds=transfer_ctx.elapsed_seconds,
                r_rows=r.num_rows,
                s_rows=s.num_rows,
                staged=False,
            )

        bits = int(math.log2(num_chunks))
        r_chunks = self._host_partition(host_ctx, r, bits)
        s_chunks = self._host_partition(host_ctx, s, bits)

        partials: List[Relation] = []
        chunk_results: List[JoinResult] = []
        for index, (r_chunk, s_chunk) in enumerate(zip(r_chunks, s_chunks)):
            if r_chunk.num_rows == 0 or s_chunk.num_rows == 0:
                continue
            self._charge_transfer(
                transfer_ctx,
                r_chunk.total_bytes + s_chunk.total_bytes,
                f"transfer_in_{index}",
            )
            result = self.inner.join(
                r_chunk, s_chunk,
                ctx=self._chunk_context(device, seed, index),
            )
            self._charge_transfer(
                transfer_ctx, result.output.total_bytes, f"transfer_out_{index}"
            )
            chunk_results.append(result)
            partials.append(result.output)

        output = _concatenate(partials, r, s)
        return OutOfCoreResult(
            output=output,
            chunk_results=chunk_results,
            num_chunks=num_chunks,
            host_partition_seconds=host_ctx.elapsed_seconds,
            transfer_seconds=transfer_ctx.elapsed_seconds,
            r_rows=r.num_rows,
            s_rows=s.num_rows,
            staged=True,
        )

    # -- internals -----------------------------------------------------------

    def _chunk_context(
        self, device: DeviceSpec, seed: Optional[int], index: int
    ) -> GPUContext:
        """A fresh unconstrained device context for one chunk join.

        Transient kernel faults keep injecting per chunk (each chunk is
        its own deterministic injection site); memory pressure does not,
        since staging exists to fit under the shrunken capacity.
        """
        return GPUContext(
            device=device,
            seed=None if seed is None else seed + index,
            fault_plan=self.fault_plan,
            fault_site=f"gpu/chunk{index}",
        )

    def _host_partition(
        self, host_ctx: GPUContext, rel: Relation, bits: int
    ) -> List[Relation]:
        """Split a relation into 2^bits co-chunks by hashed key bits.

        Charged as host-side streaming (one read + one write of the
        relation per 8-bit pass, like the device radix partitioner).
        """
        codes = partition_codes(rel.key_values, bits, hashed=True)
        passes = max(1, -(-bits // 8))
        host_ctx.submit(
            KernelStats(
                name="host_partition",
                items=rel.num_rows * passes,
                seq_read_bytes=rel.total_bytes * passes,
                seq_write_bytes=rel.total_bytes * passes,
                launches=0,
            ),
            phase="host_partition",
        )
        chunks = []
        for chunk_id in range(1 << bits):
            mask = codes == chunk_id
            chunks.append(rel.take(np.flatnonzero(mask), name=f"{rel.name}#{chunk_id}"))
        return chunks

    @staticmethod
    def _charge_transfer(ctx: GPUContext, num_bytes: int, label: str) -> None:
        ctx.submit(
            KernelStats(
                name=label, host_transfer_bytes=int(num_bytes), launches=0
            ),
            phase="transfer",
        )


def _concatenate(partials: List[Relation], r: Relation, s: Relation) -> Relation:
    """Stack partial join outputs into one relation (empty-safe)."""
    from .base import output_column_names

    schema = output_column_names(r, s)
    if not partials:
        columns = []
        for side, source, out_name in schema:
            rel = r if side == "r" else s
            dtype = rel.column(source).dtype
            columns.append((out_name, np.empty(0, dtype=dtype)))
        return Relation(columns, key="key", name="T")
    columns = [
        (name, np.concatenate([p.column(name) for p in partials]))
        for name in partials[0].column_names
    ]
    return Relation(columns, key="key", name="T")
