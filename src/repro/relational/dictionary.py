"""Dictionary encoding for string attributes.

The TPC-H/DS experiments "transform strings into numeric values by
dictionary encoding" (Section 5.3).  :class:`DictionaryEncoder` assigns
each distinct string a dense integer code; encoded columns then join and
materialize as ordinary integer columns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from .types import INT32, INT64, ColumnType


class DictionaryEncoder:
    """Bidirectional mapping between strings and dense integer codes.

    Codes are assigned in first-seen order starting at 0, so encoding is
    deterministic for a fixed input order.
    """

    def __init__(self, code_type: ColumnType = INT32):
        if code_type not in (INT32, INT64):
            raise ValueError("code_type must be INT32 or INT64")
        self.code_type = code_type
        self._code_of: Dict[str, int] = {}
        self._values: List[str] = []

    @property
    def cardinality(self) -> int:
        return len(self._values)

    def encode_one(self, value: str) -> int:
        """Code for *value*, assigning a new code on first sight."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._code_of[value] = code
            self._values.append(value)
        return code

    def encode(self, values: Iterable[str]) -> np.ndarray:
        """Encode a sequence of strings into a code column."""
        codes = [self.encode_one(v) for v in values]
        return np.asarray(codes, dtype=self.code_type.dtype)

    def decode(self, codes: Sequence[int]) -> List[str]:
        """Decode integer codes back into strings."""
        out = []
        for code in np.asarray(codes).tolist():
            if not 0 <= code < len(self._values):
                raise KeyError(f"code {code} not present in dictionary")
            out.append(self._values[code])
        return out

    def lookup(self, value: str) -> int:
        """Code of an already-encoded value (KeyError if unseen)."""
        return self._code_of[value]
