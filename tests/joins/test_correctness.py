"""Every join algorithm produces exactly the reference join output."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins import (
    CPURadixJoin,
    NonPartitionedHashJoin,
    PartitionedHashJoin,
    PartitionedHashJoinUM,
    SortMergeJoinOM,
    SortMergeJoinUM,
)
from repro.relational import Relation, assert_join_equal, reference_join
from repro.workloads import JoinWorkloadSpec, generate_join_workload

ALL_ALGORITHMS = [
    SortMergeJoinUM,
    SortMergeJoinOM,
    PartitionedHashJoinUM,
    PartitionedHashJoin,
    NonPartitionedHashJoin,
    CPURadixJoin,
]

WORKLOADS = {
    "pk_fk_full_match": JoinWorkloadSpec(
        r_rows=2048, s_rows=4096, r_payload_columns=2, s_payload_columns=2, seed=1
    ),
    "half_match": JoinWorkloadSpec(
        r_rows=2048, s_rows=4096, r_payload_columns=2, s_payload_columns=2,
        match_ratio=0.5, seed=2,
    ),
    "narrow": JoinWorkloadSpec(
        r_rows=2048, s_rows=4096, r_payload_columns=1, s_payload_columns=1, seed=3
    ),
    "skewed": JoinWorkloadSpec(
        r_rows=2048, s_rows=4096, r_payload_columns=2, s_payload_columns=2,
        zipf_factor=1.5, seed=4,
    ),
    "wide_types": JoinWorkloadSpec(
        r_rows=1024, s_rows=2048, r_payload_columns=3, s_payload_columns=2,
        key_type="int64", payload_type="int64", seed=5,
    ),
    "asymmetric_payloads": JoinWorkloadSpec(
        r_rows=1024, s_rows=4096, r_payload_columns=4, s_payload_columns=1, seed=6
    ),
    "tiny": JoinWorkloadSpec(
        r_rows=70, s_rows=90, r_payload_columns=2, s_payload_columns=2, seed=7
    ),
}


@pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS, ids=lambda c: c.name)
@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
def test_matches_reference(algorithm_cls, workload):
    r, s = generate_join_workload(WORKLOADS[workload])
    expected = reference_join(r, s)
    result = algorithm_cls().join(r, s, seed=42)
    assert_join_equal(result.output, expected)
    assert result.matches == expected.num_rows


@pytest.mark.parametrize("pattern", ["gftr", "gfur"])
def test_phj_patterns_agree(pattern):
    r, s = generate_join_workload(WORKLOADS["pk_fk_full_match"])
    expected = reference_join(r, s)
    result = PartitionedHashJoin(pattern=pattern).join(r, s, seed=1)
    assert_join_equal(result.output, expected)


def test_duplicate_keys_on_both_sides():
    rng = np.random.default_rng(8)
    r = Relation.from_key_payloads(
        rng.integers(0, 50, 300).astype(np.int32),
        [rng.integers(0, 9, 300).astype(np.int32)] * 2,
        payload_prefix="r",
    )
    s = Relation.from_key_payloads(
        rng.integers(0, 50, 400).astype(np.int32),
        [rng.integers(0, 9, 400).astype(np.int32)] * 2,
        payload_prefix="s",
    )
    expected = reference_join(r, s)
    for cls in ALL_ALGORITHMS:
        result = cls().join(r, s, seed=9)
        assert_join_equal(result.output, expected)


def test_self_join_shape():
    """J5-style FK-FK self join with heavy duplication."""
    rng = np.random.default_rng(10)
    keys = rng.integers(0, 40, 500).astype(np.int32)
    r = Relation.from_key_payloads(keys, [np.arange(500, dtype=np.int32)], payload_prefix="r")
    s = Relation.from_key_payloads(keys, [np.arange(500, dtype=np.int32)], payload_prefix="s")
    expected = reference_join(r, s)
    assert expected.num_rows > 500  # multiplicity > 1
    for cls in (PartitionedHashJoin, SortMergeJoinOM, NonPartitionedHashJoin):
        assert_join_equal(cls().join(r, s, seed=11).output, expected)


def test_bucket_chain_correct_across_seeds():
    """Non-determinism must never leak into results (IDs travel with keys)."""
    r, s = generate_join_workload(WORKLOADS["pk_fk_full_match"])
    expected = reference_join(r, s)
    for seed in (1, 2, 3):
        result = PartitionedHashJoinUM().join(r, s, seed=seed)
        assert_join_equal(result.output, expected)


@settings(max_examples=25, deadline=None)
@given(
    r_keys=st.lists(st.integers(0, 30), min_size=1, max_size=60),
    s_keys=st.lists(st.integers(0, 35), min_size=1, max_size=60),
    algorithm=st.sampled_from(["SMJ-OM", "PHJ-OM", "PHJ-UM", "SMJ-UM", "NPJ"]),
)
def test_property_any_key_multiset(r_keys, s_keys, algorithm):
    from repro.joins import make_algorithm

    rng = np.random.default_rng(0)
    r = Relation.from_key_payloads(
        np.asarray(r_keys, dtype=np.int32),
        [rng.integers(0, 5, len(r_keys)).astype(np.int32) for _ in range(2)],
        payload_prefix="r",
    )
    s = Relation.from_key_payloads(
        np.asarray(s_keys, dtype=np.int32),
        [rng.integers(0, 5, len(s_keys)).astype(np.int32) for _ in range(2)],
        payload_prefix="s",
    )
    expected = reference_join(r, s)
    result = make_algorithm(algorithm).join(r, s, seed=1)
    assert_join_equal(result.output, expected)
