"""Hash functions: determinism, ranges, digit extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.hashing import (
    hash_to_slots,
    mix_hash,
    multiplicative_hash,
    radix_digit,
)


class TestHashes:
    def test_multiplicative_deterministic(self):
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(multiplicative_hash(keys), multiplicative_hash(keys))

    def test_mix_hash_spreads_dense_keys(self):
        keys = np.arange(1 << 12, dtype=np.int64)
        low_bits = mix_hash(keys) & np.uint64(0xFF)
        counts = np.bincount(low_bits.astype(np.int64), minlength=256)
        # A good mixer spreads dense keys: no bucket > 3x the mean.
        assert counts.max() < 3 * counts.mean()

    def test_mix_hash_distinct_for_distinct_keys(self):
        keys = np.arange(1 << 14, dtype=np.int64)
        assert np.unique(mix_hash(keys)).size == keys.size


class TestSlots:
    def test_slots_in_range(self):
        keys = np.arange(10000, dtype=np.int64)
        slots = hash_to_slots(keys, 1024)
        assert slots.min() >= 0
        assert slots.max() < 1024

    def test_slots_balanced_for_dense_keys(self):
        keys = np.arange(1 << 14, dtype=np.int64)
        slots = hash_to_slots(keys, 256)
        counts = np.bincount(slots, minlength=256)
        assert counts.max() < 4 * counts.mean()

    @pytest.mark.parametrize("bad", [0, -8, 100, 3])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(ValueError):
            hash_to_slots(np.arange(4), bad)


class TestRadixDigit:
    def test_low_bits(self):
        keys = np.array([0b1011, 0b0100], dtype=np.int64)
        assert list(radix_digit(keys, 0, 2)) == [0b11, 0b00]

    def test_high_bits(self):
        keys = np.array([0b101100, 0b010011], dtype=np.int64)
        assert list(radix_digit(keys, 4, 2)) == [0b10, 0b01]

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            radix_digit(np.arange(4), 0, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        key=st.integers(0, 2 ** 62),
        start=st.integers(0, 48),
        width=st.integers(1, 8),
    )
    def test_digit_matches_python_bit_arithmetic(self, key, start, width):
        digit = radix_digit(np.array([key], dtype=np.int64), start, width)[0]
        assert digit == (key >> start) & ((1 << width) - 1)
