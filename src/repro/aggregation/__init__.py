"""Grouped aggregation strategies (the SIGMOD 2025 extension scope)."""

from .base import (
    AggSpec,
    GroupByAlgorithm,
    GroupByConfig,
    GroupByResult,
    segmented_aggregate,
)
from .hash_groupby import HashGroupBy, atomic_contention
from .partitioned_groupby import PartitionedGroupBy, derive_groupby_bits
from .planner import (
    GroupByWorkloadProfile,
    make_groupby_algorithm,
    recommend_groupby_algorithm,
)
from .out_of_core import (
    OutOfCoreGroupBy,
    OutOfCoreGroupByResult,
    estimate_groupby_footprint,
)
from .sort_groupby import SortGroupBy

#: The three principal strategies, keyed by their short names.
GROUPBY_ALGORITHMS = {
    "HASH-AGG": HashGroupBy,
    "SORT-AGG": SortGroupBy,
    "PART-AGG": PartitionedGroupBy,
}

__all__ = [
    "AggSpec",
    "GROUPBY_ALGORITHMS",
    "GroupByAlgorithm",
    "GroupByConfig",
    "GroupByResult",
    "GroupByWorkloadProfile",
    "HashGroupBy",
    "OutOfCoreGroupBy",
    "OutOfCoreGroupByResult",
    "PartitionedGroupBy",
    "SortGroupBy",
    "estimate_groupby_footprint",
    "atomic_contention",
    "derive_groupby_bits",
    "make_groupby_algorithm",
    "recommend_groupby_algorithm",
    "segmented_aggregate",
]
