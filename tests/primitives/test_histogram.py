"""Histogram and exclusive scan primitives."""

import numpy as np
import pytest

from repro.gpusim import A100, GPUContext
from repro.primitives.histogram import exclusive_scan, histogram


@pytest.fixture
def ctx():
    return GPUContext(device=A100)


class TestHistogram:
    def test_counts(self, ctx):
        codes = np.array([0, 2, 2, 1, 2], dtype=np.int64)
        counts = histogram(ctx, codes, 4)
        assert list(counts) == [1, 1, 3, 0]

    def test_empty(self, ctx):
        counts = histogram(ctx, np.empty(0, dtype=np.int64), 3)
        assert list(counts) == [0, 0, 0]

    def test_out_of_range_rejected(self, ctx):
        with pytest.raises(ValueError, match="num_bins"):
            histogram(ctx, np.array([5], dtype=np.int64), 3)

    def test_charges_one_stream(self, ctx):
        codes = np.zeros(1 << 12, dtype=np.int64)
        histogram(ctx, codes, 16)
        stats = ctx.timeline.records()[-1].stats
        assert stats.seq_read_bytes == codes.nbytes


class TestExclusiveScan:
    def test_offsets(self, ctx):
        out = exclusive_scan(ctx, np.array([3, 1, 4], dtype=np.int64))
        assert list(out) == [0, 3, 4]

    def test_empty(self, ctx):
        assert exclusive_scan(ctx, np.empty(0, dtype=np.int64)).size == 0

    def test_single(self, ctx):
        assert list(exclusive_scan(ctx, np.array([9], dtype=np.int64))) == [0]

    def test_histogram_scan_roundtrip(self, ctx):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 32, 1000)
        counts = histogram(ctx, codes, 32)
        offsets = exclusive_scan(ctx, counts)
        assert offsets[-1] + counts[-1] == 1000
