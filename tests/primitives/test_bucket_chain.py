"""Bucket-chain partitioner: grouping, non-determinism, fragmentation, skew."""

import numpy as np
import pytest

from repro.gpusim import A100, GPUContext
from repro.primitives.bucket_chain import (
    bucket_chain_partition,
    contention_factor,
)
from repro.primitives.radix_partition import partition_codes


def _partition(keys, payloads=(), bits=4, seed=0, bucket_tuples=16):
    ctx = GPUContext(device=A100, seed=seed)
    return bucket_chain_partition(
        ctx, keys, list(payloads), total_bits=bits, bucket_tuples=bucket_tuples
    )


class TestGrouping:
    def test_groups_by_partition(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1 << 10, 2000).astype(np.int32)
        part = _partition(keys, bits=6)
        codes = partition_codes(part.keys, 6)
        assert np.array_equal(codes, np.sort(codes))

    def test_payloads_stay_with_keys(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 256, 1000).astype(np.int32)
        payload = keys * 3
        part = _partition(keys, [payload], bits=4)
        assert np.array_equal(part.payloads[0], part.keys * 3)

    def test_counts_sum(self):
        keys = np.arange(500, dtype=np.int32)
        part = _partition(keys, bits=5)
        assert part.counts.sum() == 500
        assert part.num_partitions == 32


class TestNonDeterminism:
    """Section 4.3: atomics make intra-partition order run dependent."""

    def test_different_seeds_differ_within_partitions(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 16, 4000).astype(np.int32)
        ids = np.arange(4000, dtype=np.int32)
        a = _partition(keys, [ids], bits=2, seed=1)
        b = _partition(keys, [ids], bits=2, seed=2)
        # Same multiset per partition, different order.
        assert np.array_equal(np.sort(a.payloads[0]), np.sort(b.payloads[0]))
        assert not np.array_equal(a.payloads[0], b.payloads[0])

    def test_same_seed_reproduces(self):
        keys = np.arange(1000, dtype=np.int32)
        a = _partition(keys, bits=3, seed=7)
        b = _partition(keys, bits=3, seed=7)
        assert np.array_equal(a.keys, b.keys)


class TestFragmentation:
    def test_allocation_covers_data_plus_slack(self):
        keys = np.arange(100, dtype=np.int32)
        part = _partition(keys, bits=4, bucket_tuples=16)
        assert part.allocated_bytes >= part.used_bytes
        assert part.fragmentation_bytes >= 0

    def test_every_partition_gets_initial_bucket(self):
        # 1 tuple, 16 partitions: 16 initial buckets allocated.
        keys = np.zeros(1, dtype=np.int32)
        part = _partition(keys, bits=4, bucket_tuples=16)
        assert part.allocated_bytes == 16 * 16 * 4

    def test_buckets_per_partition(self):
        keys = np.zeros(40, dtype=np.int32)  # all in partition 0
        part = _partition(keys, bits=2, bucket_tuples=16)
        assert part.buckets_per_partition[0] == 3  # ceil(40/16)


class TestSkewContention:
    def test_uniform_factor_near_one(self):
        counts = np.full(64, 100)
        assert contention_factor(counts) == pytest.approx(1.0)

    def test_factor_grows_with_imbalance(self):
        mild = np.array([100] * 63 + [400])
        hot = np.array([10] * 63 + [10000])
        assert contention_factor(mild) < contention_factor(hot)

    def test_empty_counts(self):
        assert contention_factor(np.array([], dtype=np.int64)) == 1.0
        assert contention_factor(np.zeros(4, dtype=np.int64)) == 1.0

    def test_skewed_partitioning_costs_more_time(self):
        rng = np.random.default_rng(3)
        n = 1 << 14
        uniform = rng.integers(0, 1 << 12, n).astype(np.int32)
        skewed = np.zeros(n, dtype=np.int32)  # everything in one partition
        ctx_u = GPUContext(device=A100, seed=0)
        bucket_chain_partition(ctx_u, uniform, [], total_bits=8)
        ctx_s = GPUContext(device=A100, seed=0)
        bucket_chain_partition(ctx_s, skewed, [], total_bits=8)
        assert ctx_s.elapsed_seconds > ctx_u.elapsed_seconds
