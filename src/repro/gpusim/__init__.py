"""GPU execution simulator substrate.

Real numpy data movement + measured memory traffic + a calibrated cost
model standing in for the CUDA kernels and Ampere GPUs of the paper.
See DESIGN.md ("Hardware substitution") for the full rationale.
"""

from .context import GPUContext
from .costmodel import CostModel, TimeBreakdown
from .device import (
    A100,
    BUILTIN_DEVICES,
    CACHE_LINE_BYTES,
    CPU_SERVER,
    RTX3090,
    SECTOR_BYTES,
    WARP_SIZE,
    DeviceSpec,
    get_device,
    scaled_device,
)
from .kernel import KernelRecord, KernelStats
from .memory import BufferPool, DeviceArray, DeviceMemory, MemoryReservation
from .profiler import ProfileCounters, Profiler
from .timeline import PHASES, PhaseTimeline

__all__ = [
    "A100",
    "BUILTIN_DEVICES",
    "BufferPool",
    "CACHE_LINE_BYTES",
    "CPU_SERVER",
    "CostModel",
    "DeviceArray",
    "DeviceMemory",
    "DeviceSpec",
    "GPUContext",
    "KernelRecord",
    "KernelStats",
    "MemoryReservation",
    "PHASES",
    "PhaseTimeline",
    "ProfileCounters",
    "Profiler",
    "RTX3090",
    "SECTOR_BYTES",
    "TimeBreakdown",
    "WARP_SIZE",
    "get_device",
]
