"""Quickstart: join two relations and aggregate the result.

Demonstrates the three-call public API — build relations, join them
(the planner picks the algorithm), and group-by the output — plus how to
read the simulated phase breakdown that every result carries.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import Relation, group_by, join

rng = np.random.default_rng(7)

# A primary-key relation R (e.g. customers) with two payload columns.
num_customers = 50_000
customers = Relation.from_key_payloads(
    rng.permutation(num_customers).astype(np.int32),
    [
        rng.integers(0, 50, num_customers).astype(np.int32),   # region
        rng.integers(18, 99, num_customers).astype(np.int32),  # age
    ],
    payload_prefix="c",
    name="customers",
)

# A foreign-key relation S (e.g. orders): every order references a
# customer; two payload columns of its own.
num_orders = 200_000
orders = Relation.from_key_payloads(
    rng.integers(0, num_customers, num_orders).astype(np.int32),
    [
        rng.integers(1, 500, num_orders).astype(np.int32),   # amount
        rng.integers(0, 365, num_orders).astype(np.int32),   # day
    ],
    payload_prefix="o",
    name="orders",
)

print(f"R = {customers!r}")
print(f"S = {orders!r}")

# --- Join: the planner picks the algorithm from the workload shape -----
result = join(customers, orders)
print(f"\nJoined with {result.algorithm} ({result.pattern.upper()} pattern)")
print(f"  output rows:       {result.output.num_rows}")
print(f"  simulated total:   {result.total_seconds * 1e3:.3f} ms on {result.device.name}")
for phase, seconds in result.phase_seconds.items():
    print(f"    {phase:12s} {seconds * 1e3:8.3f} ms")
print(f"  throughput:        {result.throughput_tuples_per_s / 1e6:.0f} Mtuples/s")
print(f"  peak aux memory:   {result.peak_aux_bytes / 1e6:.2f} MB")

# Forcing a specific algorithm gives the identical relation:
baseline = join(customers, orders, algorithm="SMJ-UM")
assert result.output.equals_unordered(baseline.output)
speedup = baseline.total_seconds / result.total_seconds
print(f"\n{result.algorithm} is {speedup:.2f}x faster than SMJ-UM on this workload")

# --- Group by: total order amount per region ---------------------------
joined = result.output
agg = group_by(
    joined.column("c1"),           # region (carried from R)
    {"amount": joined.column("o1")},
    {"amount": "sum"},
)
print(f"\nAggregated with {agg.algorithm}: {agg.groups} regions")
top = int(np.argmax(agg.output["sum_amount"]))
print(
    f"  busiest region {agg.output['group_key'][top]} with total amount "
    f"{agg.output['sum_amount'][top]}"
)
print(f"  simulated time: {agg.total_seconds * 1e3:.3f} ms")
