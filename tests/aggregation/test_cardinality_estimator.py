"""The shared strided-sample group-cardinality estimator.

One implementation (``aggregation.planner.estimate_group_cardinality``)
now serves ``repro.api.group_by`` and the query executor; these tests
pin its behaviour so neither call site drifts.
"""

import numpy as np
import pytest

from repro.aggregation.planner import (
    CARDINALITY_SAMPLE_LIMIT,
    estimate_group_cardinality,
)


class TestExactRegime:
    """At or below the sample limit the estimate is exact."""

    def test_empty(self):
        assert estimate_group_cardinality(np.empty(0, dtype=np.int32)) == 0

    def test_single_element(self):
        assert estimate_group_cardinality(np.array([42], dtype=np.int64)) == 1

    def test_all_duplicates(self):
        assert estimate_group_cardinality(np.full(1000, 7, dtype=np.int32)) == 1

    def test_all_distinct(self):
        keys = np.random.default_rng(0).permutation(5000).astype(np.int32)
        assert estimate_group_cardinality(keys) == 5000

    def test_exactly_at_limit(self):
        keys = np.arange(CARDINALITY_SAMPLE_LIMIT, dtype=np.int64)
        assert estimate_group_cardinality(keys) == CARDINALITY_SAMPLE_LIMIT

    def test_skewed_small_input(self):
        keys = np.concatenate(
            [np.zeros(900, dtype=np.int32), np.arange(1, 101, dtype=np.int32)]
        )
        assert estimate_group_cardinality(keys) == 101


class TestSampledRegime:
    """Above the limit a strided sample bounds the work."""

    def test_never_exceeds_true_cardinality_for_repeating_keys(self):
        keys = np.tile(np.arange(64, dtype=np.int32), 3000)  # 192k rows, 64 groups
        estimate = estimate_group_cardinality(keys)
        assert 1 <= estimate <= 64

    def test_uniform_large_input_close_to_truth(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 50, 200_000).astype(np.int32)
        estimate = estimate_group_cardinality(keys)
        # A 64k strided sample of 200k uniform draws over 50 values
        # sees every value with overwhelming probability.
        assert estimate == 50

    def test_custom_sample_limit(self):
        keys = np.arange(10_000, dtype=np.int64)
        exact = estimate_group_cardinality(keys, sample_limit=10_000)
        sampled = estimate_group_cardinality(keys, sample_limit=100)
        assert exact == 10_000
        assert 0 < sampled <= 10_000
        # stride = size // limit = 100 -> exactly 100 sampled keys
        assert sampled == 100

    def test_deterministic(self):
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 1 << 20, 300_000).astype(np.int64)
        assert estimate_group_cardinality(keys) == estimate_group_cardinality(keys)

    def test_stride_sample_semantics(self):
        """Above the limit, the estimate is distinct-of-keys[::size//limit].

        Pins the exact sampling rule (deterministic stride from element
        0, floor-divided step) so the sort-based counting helper behind
        it can't silently change which keys are examined.
        """
        from repro.primitives.grouping import count_distinct

        rng = np.random.default_rng(13)
        keys = rng.integers(0, 5000, 200_000).astype(np.int32)
        limit = 1000
        stride = keys.size // limit
        expected = count_distinct(keys[::stride])
        assert estimate_group_cardinality(keys, sample_limit=limit) == expected
        # The stride starts at element 0: planting a unique sentinel
        # there must always be visible to the estimate.
        keys[0] = 999_983
        assert estimate_group_cardinality(keys, sample_limit=limit) == count_distinct(
            keys[::stride]
        )


class TestCallSitesAgree:
    """api.group_by and the executor resolve the same estimate."""

    def test_same_helper_is_used(self):
        import repro.api as api
        import repro.query.executor as executor

        assert api.estimate_group_cardinality is estimate_group_cardinality
        assert executor.estimate_group_cardinality is estimate_group_cardinality

    def test_auto_algorithm_selection_uses_estimate(self):
        from repro import group_by

        rng = np.random.default_rng(11)
        keys = rng.integers(0, 8, 4096).astype(np.int32)
        values = {"v": rng.integers(0, 100, 4096).astype(np.int32)}
        result = group_by(keys, values, {"v": "sum"})
        assert result.groups == np.unique(keys).size
