"""TraceSession mechanics: activation, nesting, clock, counters."""

import numpy as np
import pytest

from repro import Relation, join
from repro.gpusim import A100, GPUContext, KernelStats
from repro.obs import TraceSession, current_session
from repro.obs.session import KERNEL


def _submit(ctx, name="k", seconds_worth=1 << 20, phase=None):
    return ctx.submit(
        KernelStats(name=name, items=64, seq_read_bytes=seconds_worth), phase=phase
    )


class TestActivation:
    def test_no_session_by_default(self):
        assert current_session() is None
        ctx = GPUContext(device=A100)
        assert ctx.trace is None

    def test_context_picks_up_active_session(self):
        with TraceSession() as session:
            assert current_session() is session
            ctx = GPUContext(device=A100)
            assert ctx.trace is session
        assert current_session() is None

    def test_nested_sessions_innermost_wins(self):
        with TraceSession("outer") as outer:
            with TraceSession("inner") as inner:
                assert current_session() is inner
            assert current_session() is outer

    def test_explicit_trace_overrides(self):
        explicit = TraceSession("explicit")
        with TraceSession("active"):
            ctx = GPUContext(device=A100, trace=explicit)
            assert ctx.trace is explicit

    def test_fork_propagates_trace(self):
        session = TraceSession()
        ctx = GPUContext(device=A100, trace=session)
        assert ctx.fork().trace is session


class TestRecording:
    def test_kernel_events_advance_clock(self):
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            s1 = _submit(ctx)
            s2 = _submit(ctx)
        events = session.kernel_events()
        assert len(events) == 2
        assert session.total_seconds == pytest.approx(s1 + s2)
        assert events[0].start_s == 0.0
        assert events[1].start_s == pytest.approx(s1)

    def test_spans_nest_and_close_on_clock(self):
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            with session.span("outer", category="operator") as outer:
                with ctx.phase("transform"):
                    _submit(ctx)
        assert outer.end_s == session.total_seconds
        phases = [e for _, e in session.spans(category="phase")]
        assert [p.name for p in phases] == ["transform"]
        kernel = session.kernel_events()[0]
        # kernel -> phase span -> operator span
        assert session.events[kernel.parent].name == "transform"
        assert session.events[session.events[kernel.parent].parent] is outer

    def test_kernels_under_collects_descendants(self):
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            with session.span("op", category="operator"):
                with ctx.phase("match"):
                    _submit(ctx)
                _submit(ctx)
            _submit(ctx)  # outside the operator span
        (op_index, _), = session.spans(category="operator")
        assert len(session.kernels_under(op_index)) == 2
        assert len(session.kernel_events()) == 3

    def test_counters_accumulate_from_stats(self):
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            ctx.submit(KernelStats(name="a", items=10, seq_read_bytes=100))
            ctx.submit(KernelStats(name="b", items=5, seq_write_bytes=50))
        counters = session.metrics.as_dict()
        assert counters["items"] == 15
        assert counters["seq_read_bytes"] == 100
        assert counters["seq_write_bytes"] == 50
        assert counters["bytes_streamed"] == 150
        assert counters["kernel_launches"] == 2

    def test_count_noop_without_session(self):
        ctx = GPUContext(device=A100)
        ctx.count("anything", 5)  # must not raise

    def test_phase_seconds_matches_breakdown_exactly(self):
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            with ctx.phase("transform"):
                _submit(ctx)
                _submit(ctx)
            _submit(ctx, phase="match")
            _submit(ctx)  # -> "other"
        assert session.phase_seconds() == dict(ctx.timeline.breakdown())


class TestZeroOverheadDisabled:
    def test_untraced_run_records_nothing(self):
        rng = np.random.default_rng(0)
        r = Relation.from_key_payloads(
            np.arange(256, dtype=np.int32),
            [rng.integers(0, 9, 256).astype(np.int32)],
            payload_prefix="r",
        )
        s = Relation.from_key_payloads(
            rng.integers(0, 256, 512).astype(np.int32),
            [rng.integers(0, 9, 512).astype(np.int32)],
            payload_prefix="s",
        )
        before = join(r, s, algorithm="PHJ-OM", seed=1)
        with TraceSession() as session:
            traced = join(r, s, algorithm="PHJ-OM", seed=1)
        after = join(r, s, algorithm="PHJ-OM", seed=1)
        # Identical simulated results with tracing on or off.
        assert before.phase_seconds == traced.phase_seconds == after.phase_seconds
        assert before.kernel_count == traced.kernel_count
        assert len(session.kernel_events()) == traced.kernel_count
        assert session.events  # the traced run did capture spans


class TestSessionQueries:
    def test_span_categories(self):
        with TraceSession() as session:
            with session.span("q", category="query"):
                with session.span("op", category="operator"):
                    pass
        assert [e.name for _, e in session.spans(category="query")] == ["q"]
        assert [e.name for _, e in session.spans()] == ["q", "op"]
        assert session.kernel_events() == []

    def test_kernel_event_payload(self):
        with TraceSession() as session:
            ctx = GPUContext(device=A100)
            seconds = _submit(ctx, name="gather:test", phase="materialize")
        event = session.kernel_events()[0]
        assert event.category == KERNEL
        assert event.name == "gather:test"
        assert event.args["phase"] == "materialize"
        assert event.device == A100.name
        assert event.cycles == pytest.approx(seconds * A100.clock_hz)
        assert event.record.stats.items == 64
