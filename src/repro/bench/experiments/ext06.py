"""ext06: serving throughput — concurrent streams, caches, backpressure.

The paper benchmarks one operator at a time; this extension measures
the serving layer built on top of it (:mod:`repro.serve`): N logical
streams share the simulated device under a bandwidth-occupancy model,
admission control reserves memory and bounds the queue, and repeated
Zipf-popular templates flow through the plan and result caches.

The sweep holds the workload fixed (a closed-loop template mix, one
seed) and varies the serving configuration:

* ``closed`` rows sweep the stream count with caches disabled — the
  pure scheduling effect.  Serial back-to-back service is the
  ``streams=1`` row; concurrency wins exactly as much as the occupancy
  model's saturating aggregate rate allows (``k * share(k)``), so
  throughput must rise with streams and the mean *stretch* (service
  time over solo time) must rise with contention.
* the ``cached`` row re-enables both caches: hot templates hit and the
  makespan collapses below the uncached run.
* the ``open-loop`` row drives Poisson arrivals at ~4x the measured
  cached service rate into a shallow queue — the admission bound
  surfaces as rejected queries (backpressure), not as unbounded
  latency.
* the ``faults`` row injects transient kernel faults into every query;
  recovery retries stretch individual queries but every query still
  completes, and (as everywhere) outputs match the fault-free rows.

Every completed query's output is checked bit-identical to a direct
``execute()`` of its template (faulted joins: identical up to row
order, the fault framework's contract), which is the serving layer's
core invariant: scheduling and caching re-time queries, never re-answer
them.  All latency percentiles are on the *simulated* clock.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ...aggregation.base import AggSpec
from ...faults import FaultPlan
from ...query.executor import execute
from ...query.plan import Aggregate, Join, Project, Scan
from ...relational.relation import Relation
from ...serve.driver import QueryTemplate, WorkloadDriver
from ...serve.server import QueryServer
from ...serve.trace import write_serve_trace
from ...workloads.generators import JoinWorkloadSpec, generate_join_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, Setup, make_setup

#: Serving queries are interactive-scale: 1/8 the microbenchmark rows.
PAPER_ROWS = 1 << 24
STREAMS = (1, 2, 4, 8)
NUM_QUERIES = 24
ZIPF_FACTOR = 1.1
FAULT_RATE = 0.2
#: Open-loop overload: arrival rate as a multiple of measured capacity.
OVERLOAD = 4.0
OVERLOAD_QUEUE_DEPTH = 4


def _make_templates(setup: Setup, seed: int):
    spec = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS),
        s_rows=setup.rows(PAPER_ROWS),
        r_payload_columns=2,
        s_payload_columns=2,
        seed=seed,
    )
    r, s = generate_join_workload(spec)
    spec2 = JoinWorkloadSpec(
        r_rows=setup.rows(PAPER_ROWS) // 2,
        s_rows=setup.rows(PAPER_ROWS) // 2,
        r_payload_columns=1,
        s_payload_columns=1,
        seed=seed + 1,
    )
    r2, s2 = generate_join_workload(spec2)
    catalog = {"r": r, "s": s, "r2": r2, "s2": s2}
    templates = [
        QueryTemplate("join-hot", Join(Scan(r), Scan(s))),
        QueryTemplate(
            "agg",
            Aggregate(
                Join(Scan(r), Scan(s)),
                group_column="r1",
                aggregates=(AggSpec("s1", "sum"), AggSpec("s2", "max")),
            ),
        ),
        QueryTemplate("proj", Project(Join(Scan(r), Scan(s)), ("r1", "s1"))),
        QueryTemplate("join-cold", Join(Scan(r2), Scan(s2))),
    ]
    return catalog, templates


def _make_server(setup: Setup, seed: int, streams: int, caches: bool,
                 catalog, queue_depth: int = 256) -> QueryServer:
    server = QueryServer(
        streams=streams,
        device=setup.device,
        config=setup.config,
        seed=seed,
        queue_depth=queue_depth,
        enable_plan_cache=caches,
        enable_result_cache=caches,
    )
    for name, relation in catalog.items():
        server.register(name, relation)
    return server


def _outputs_equal(a, b, unordered: bool = False) -> bool:
    if isinstance(a, Relation):
        if unordered:
            return a.equals_unordered(b)
        return a.column_names == b.column_names and all(
            np.array_equal(a.column(c), b.column(c)) for c in a.column_names
        )
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def _add_row(result: ExperimentResult, mode: str, streams: int, caches: bool,
             report) -> None:
    result.add_row(
        mode,
        streams,
        "on" if caches else "off",
        report.submitted,
        report.completed,
        report.rejected,
        report.makespan_s * 1e3,
        report.throughput_qps,
        report.latency_p50_s * 1e3,
        report.latency_p95_s * 1e3,
        report.latency_p99_s * 1e3,
        report.mean_stretch,
        int(report.counters.get("serve.result_cache_hits", 0)),
    )


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    streams: Sequence[int] = STREAMS,
    num_queries: int = NUM_QUERIES,
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    setup = make_setup(scale)
    result = ExperimentResult(
        experiment_id="ext06",
        title="Serving throughput: stream concurrency, caching, admission "
        "control on the simulated clock",
        headers=[
            "mode", "streams", "caches", "queries", "done", "rej",
            "makespan_ms", "qps", "p50_ms", "p95_ms", "p99_ms",
            "stretch", "rc_hits",
        ],
    )
    catalog, templates = _make_templates(setup, seed)
    # Ground truth per template, produced by the unchanged executor.
    direct = {
        t.name: execute(
            t.plan, device=setup.device, config=setup.config, seed=seed
        ).output
        for t in templates
    }

    def check_outcomes(server: QueryServer, unordered: bool = False) -> bool:
        return all(
            _outputs_equal(direct[o.tag], o.output, unordered=unordered)
            for o in server.outcomes
            if o.status == "completed" and o.tag in direct
        )

    identical = True
    makespan_by_streams = {}
    stretch_by_streams = {}
    last_server = None
    for count in streams:
        server = _make_server(setup, seed, count, caches=False, catalog=catalog)
        driver = WorkloadDriver(
            server, templates, zipf_factor=ZIPF_FACTOR, seed=seed + 10
        )
        report = driver.run_closed_loop(num_queries).report
        identical &= check_outcomes(server)
        makespan_by_streams[count] = report.makespan_s
        stretch_by_streams[count] = report.mean_stretch
        _add_row(result, "closed", count, False, report)
        last_server = server

    cached_qps = 0.0
    cached_makespan = None
    wide = max(streams)
    mid = 4 if 4 in streams else wide
    server = _make_server(setup, seed, mid, caches=True, catalog=catalog)
    driver = WorkloadDriver(
        server, templates, zipf_factor=ZIPF_FACTOR, seed=seed + 10
    )
    report = driver.run_closed_loop(num_queries).report
    identical &= check_outcomes(server)
    cached_qps = report.throughput_qps
    cached_makespan = report.makespan_s
    _add_row(result, "cached", mid, True, report)
    if trace_dir is not None:
        write_serve_trace(server, f"{trace_dir}/ext06-cached.trace.json")

    rejected = 0
    if cached_qps > 0:
        server = _make_server(
            setup, seed, mid, caches=True, catalog=catalog,
            queue_depth=OVERLOAD_QUEUE_DEPTH,
        )
        driver = WorkloadDriver(
            server, templates, zipf_factor=ZIPF_FACTOR, seed=seed + 11
        )
        report = driver.run_open_loop(
            num_queries, arrival_rate_qps=OVERLOAD * cached_qps
        ).report
        identical &= check_outcomes(server)
        rejected = report.rejected
        _add_row(result, "open-loop", mid, True, report)

    fault_plan = FaultPlan(seed=seed + 17, kernel_fault_rate=FAULT_RATE)
    server = _make_server(setup, seed, mid, caches=True, catalog=catalog)
    rng = np.random.default_rng(seed + 12)
    for index in range(num_queries):
        template = templates[int(rng.integers(0, len(templates)))]
        server.submit(template.plan, fault_plan=fault_plan, tag=template.name)
    server.run()
    fault_report = server.report()
    faults_complete = fault_report.completed == fault_report.submitted
    identical &= check_outcomes(server, unordered=True)
    _add_row(result, "faults", mid, True, fault_report)

    serial = makespan_by_streams[min(streams)]
    result.findings["results_bit_identical_all_paths"] = float(identical)
    if 4 in makespan_by_streams:
        result.findings["throughput_gain_at_4_streams"] = (
            serial / makespan_by_streams[4]
        )
    result.findings["throughput_gain_at_max_streams"] = (
        serial / makespan_by_streams[wide]
    )
    result.findings["stretch_rises_with_contention"] = float(
        stretch_by_streams[wide] >= stretch_by_streams[min(streams)]
    )
    if cached_makespan is not None and mid in makespan_by_streams:
        result.findings["caching_speedup_at_same_streams"] = (
            makespan_by_streams[mid] / cached_makespan
        )
    result.findings["open_loop_backpressure_rejections"] = float(rejected)
    result.findings["faulted_queries_all_complete"] = float(faults_complete)
    result.add_note(
        "closed rows: caches off, so every query executes; the stream "
        "sweep isolates the occupancy model (interference 0.6 -> "
        "aggregate rate saturates at 1.67x serial)"
    )
    result.add_note(
        "all percentiles are simulated seconds; identical seeds make "
        "every row reproducible bit for bit"
    )
    if last_server is not None:
        del last_server
    return result
