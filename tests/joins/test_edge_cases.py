"""Join edge cases: empty matches, single rows, zero payloads, errors."""

import numpy as np
import pytest

from repro.errors import JoinConfigError
from repro.joins import (
    ALGORITHMS,
    JoinConfig,
    NonPartitionedHashJoin,
    PartitionedHashJoin,
    make_algorithm,
)
from repro.relational import Relation, reference_join, assert_join_equal

ALL = list(ALGORITHMS.values()) + [NonPartitionedHashJoin]


def _rel(keys, payloads=1, prefix="p", dtype=np.int32):
    arr = np.asarray(keys, dtype=dtype)
    cols = [np.arange(arr.size, dtype=dtype) for _ in range(payloads)]
    return Relation.from_key_payloads(arr, cols, payload_prefix=prefix)


@pytest.mark.parametrize("cls", ALL, ids=lambda c: c.name)
class TestDegenerate:
    def test_no_matches(self, cls):
        result = cls().join(_rel([1, 2, 3], prefix="r"), _rel([7, 8], prefix="s"), seed=0)
        assert result.matches == 0
        assert result.output.num_rows == 0
        assert result.output.column_names == ["key", "r1", "s1"]

    def test_single_row_each(self, cls):
        result = cls().join(_rel([5], prefix="r"), _rel([5], prefix="s"), seed=0)
        assert result.matches == 1
        assert result.output.column("key")[0] == 5

    def test_probe_much_larger(self, cls):
        r = _rel([0, 1], prefix="r")
        s = _rel([0] * 500 + [1] * 500, prefix="s")
        result = cls().join(r, s, seed=0)
        assert result.matches == 1000

    def test_zero_payload_columns(self, cls):
        r = _rel(np.arange(100), payloads=0)
        s = _rel(np.arange(100), payloads=0)
        result = cls().join(r, s, seed=0)
        assert result.matches == 100
        assert result.output.column_names == ["key"]

    def test_wide_output_names_unique(self, cls):
        r = _rel([1, 2], payloads=2, prefix="x")
        s = _rel([1, 2], payloads=2, prefix="x")
        result = cls().join(r, s, seed=0)
        assert result.output.column_names == ["key", "x1", "x2", "x1_s", "x2_s"]


class TestConfigValidation:
    def test_bad_tuples_per_partition(self):
        with pytest.raises(JoinConfigError):
            JoinConfig(tuples_per_partition=0).validate()

    def test_bad_partition_bits(self):
        with pytest.raises(JoinConfigError):
            JoinConfig(partition_bits=0).validate()
        with pytest.raises(JoinConfigError):
            JoinConfig(partition_bits=30).validate()

    def test_bad_bucket_tuples(self):
        with pytest.raises(JoinConfigError):
            JoinConfig(bucket_tuples=-1).validate()

    def test_bad_pattern(self):
        with pytest.raises(JoinConfigError):
            PartitionedHashJoin(pattern="nope")

    def test_make_algorithm_unknown(self):
        with pytest.raises(KeyError, match="PHJ-OM"):
            make_algorithm("FOO")


class TestForcedOptions:
    def test_forced_partition_bits_still_correct(self):
        rng = np.random.default_rng(0)
        r = _rel(rng.permutation(2000), payloads=2, prefix="r")
        s = _rel(rng.integers(0, 2000, 3000), payloads=2, prefix="s")
        expected = reference_join(r, s)
        for bits in (2, 6, 12):
            cfg = JoinConfig(partition_bits=bits)
            assert_join_equal(
                PartitionedHashJoin(cfg).join(r, s, seed=0).output, expected
            )

    def test_hashed_partitioning_still_correct(self):
        rng = np.random.default_rng(1)
        # Keys sharing low bits: raw radix would put everything in one
        # partition; hashed partitioning spreads them.
        r = _rel(np.arange(1000) * 1024, payloads=2, prefix="r", dtype=np.int64)
        s = _rel(rng.choice(np.arange(1000) * 1024, 2000), payloads=2, prefix="s",
                 dtype=np.int64)
        expected = reference_join(r, s)
        cfg = JoinConfig(hashed_partitioning=True)
        assert_join_equal(PartitionedHashJoin(cfg).join(r, s, seed=0).output, expected)

    def test_double_merge_pass_same_result(self):
        rng = np.random.default_rng(2)
        r = _rel(rng.permutation(500), payloads=2, prefix="r")
        s = _rel(rng.integers(0, 500, 900), payloads=2, prefix="s")
        from repro.joins import SortMergeJoinOM

        single = SortMergeJoinOM().join(r, s, seed=0)
        double = SortMergeJoinOM(JoinConfig(double_merge_pass=True)).join(r, s, seed=0)
        assert single.output.equals_unordered(double.output)

    def test_unique_build_keys_flag_respected(self):
        r = _rel([3, 1, 2], prefix="r")
        s = _rel([1, 1, 3], prefix="s")
        cfg = JoinConfig(unique_build_keys=True)
        result = PartitionedHashJoin(cfg).join(r, s, seed=0)
        assert result.matches == 3
