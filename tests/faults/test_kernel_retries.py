"""Transient kernel faults at GPUContext.submit: retry accounting.

The injection point must (a) never touch the data path, (b) charge
every failed attempt plus exponential backoff to the simulated clock,
and (c) surface the recovery as ``retry:*`` kernels, ``retry`` spans
and ``fault_*`` counters — while the successful attempt's reported
seconds stay exactly the fault-free cost.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.gpusim import GPUContext, KernelStats
from repro.obs import TraceSession

RATE = 0.4
KERNELS = 40


def _run(ctx):
    per_kernel = []
    for i in range(KERNELS):
        stats = KernelStats(name=f"k{i}", items=1 << 12,
                            seq_read_bytes=1 << 16)
        per_kernel.append(ctx.submit(stats, phase="work"))
    return per_kernel


def test_reported_seconds_are_the_successful_attempt_only():
    clean = _run(GPUContext())
    faulty = _run(GPUContext(fault_plan=FaultPlan(seed=3, kernel_fault_rate=RATE)))
    assert faulty == clean


def test_retries_extend_the_timeline_deterministically():
    plan = FaultPlan(seed=3, kernel_fault_rate=RATE)
    base = GPUContext()
    _run(base)
    a = GPUContext(fault_plan=plan)
    _run(a)
    b = GPUContext(fault_plan=plan)
    _run(b)
    assert a.elapsed_seconds == b.elapsed_seconds
    assert a.elapsed_seconds > base.elapsed_seconds


def test_retry_records_carry_backoff_and_names():
    plan = FaultPlan(seed=3, kernel_fault_rate=RATE)
    ctx = GPUContext(fault_plan=plan)
    _run(ctx)
    retries = [r for r in ctx.timeline.records() if r.stats.name.startswith("retry:")]
    assert retries, "rate 0.4 over 40 kernels must fire"
    for record in retries:
        attempt = record.extra["attempt"]
        assert record.extra["fault"] == "transient-kernel"
        assert 1 <= attempt <= plan.max_retries
        # A failed attempt costs the kernel's full time plus backoff.
        original = record.stats.name[len("retry:"):]
        kernel_s = next(
            r.seconds for r in ctx.timeline.records() if r.stats.name == original
        )
        assert record.seconds == pytest.approx(
            kernel_s + plan.backoff_seconds(attempt - 1)
        )


def test_data_path_rng_is_untouched():
    """Injection draws come from a private stream, never ctx.rng."""
    clean = GPUContext(seed=11)
    faulty = GPUContext(seed=11, fault_plan=FaultPlan(seed=3, kernel_fault_rate=RATE))
    _run(clean)
    _run(faulty)
    assert np.array_equal(clean.rng.integers(0, 1 << 30, 64),
                          faulty.rng.integers(0, 1 << 30, 64))


def test_zero_rate_plan_is_a_noop():
    clean = GPUContext()
    planned = GPUContext(fault_plan=FaultPlan(seed=3))
    _run(clean)
    _run(planned)
    assert planned.elapsed_seconds == clean.elapsed_seconds
    assert planned.faults.events == []


def test_counters_and_spans_reach_the_trace_session():
    plan = FaultPlan(seed=3, kernel_fault_rate=RATE)
    with TraceSession("retries") as session:
        ctx = GPUContext(fault_plan=plan)
        _run(ctx)
    injected = session.metrics.value("faults_injected_kernel")
    retries = session.metrics.value("fault_kernel_retries")
    retry_s = session.metrics.value("fault_retry_seconds")
    assert injected > 0
    assert retries >= injected  # an event may charge several attempts
    assert retry_s > 0
    spans = session.spans(category="retry")
    assert len(spans) == int(retries)
    for _, span in spans:
        assert span.name.startswith("retry:")
        assert span.args["backoff_s"] > 0
    # The injector's own audit log agrees with the session counters.
    assert sum(e.attempts - 1 for e in ctx.faults.events) == int(retries)


def test_fork_inherits_the_fault_plan():
    plan = FaultPlan(seed=3, kernel_fault_rate=RATE)
    ctx = GPUContext(fault_plan=plan)
    child = ctx.fork(seed=0)
    assert child.fault_plan is plan
    assert child.faults is not None
