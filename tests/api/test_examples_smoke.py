"""The fast example scripts execute end to end.

Only the quick examples run here (the heavier ones regenerate paper
figures and belong to the benchmark suite); each must exit cleanly and
print its headline result.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = {
    "quickstart.py": "Joined with",
    "gather_microscope.py": "sectors",
    "query_server.py": "Served 8 concurrent joins",
}


@pytest.mark.parametrize("script", sorted(FAST_EXAMPLES))
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert FAST_EXAMPLES[script] in proc.stdout


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "ml_preprocessing_pipeline.py",
        "star_schema_analytics.py",
        "tpch_join_study.py",
        "planner_advisor.py",
        "gather_microscope.py",
        "advanced_pipelines.py",
        "mini_query_engine.py",
        "query_server.py",
    }
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present
