"""agg04: grouped aggregation across data types.

The aggregation analogue of Figure 15: {4B, 8B} keys x {4B, 8B} values,
two sum columns.  Wider values make the GFTR partition passes more
expensive (they move the values) while the hash table's random folds
stay latency bound — the same asymmetry the join study found.
"""

from __future__ import annotations

from ...aggregation.base import AggSpec
from ...aggregation.planner import make_groupby_algorithm
from ...relational.types import INT32, INT64
from ...workloads.groupby_gen import GroupByWorkloadSpec, generate_groupby_workload
from ..harness import DEFAULT_SCALE, ExperimentResult, make_setup

PAPER_ROWS = 1 << 27
GROUP_FRACTION = 2 ** -8
TYPE_COMBOS = (
    ("4B key + 4B value", INT32, INT32),
    ("4B key + 8B value", INT32, INT64),
    ("8B key + 8B value", INT64, INT64),
)
ALGORITHMS = ("HASH-AGG", "SORT-AGG", "PART-AGG")


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> ExperimentResult:
    setup = make_setup(scale)
    rows = setup.rows(PAPER_ROWS)
    groups = max(4, int(rows * GROUP_FRACTION))
    result = ExperimentResult(
        experiment_id="agg04",
        title="Grouped aggregation across data types (total ms)",
        headers=["types"] + list(ALGORITHMS) + ["winner"],
    )
    winners = []
    per_combo = {}
    for label, key_type, value_type in TYPE_COMBOS:
        keys, values = generate_groupby_workload(
            GroupByWorkloadSpec(
                rows=rows, groups=groups, value_columns=2,
                key_type=key_type, value_type=value_type, seed=seed,
            )
        )
        aggs = [AggSpec("v1", "sum"), AggSpec("v2", "sum")]
        times = {}
        for name in ALGORITHMS:
            res = make_groupby_algorithm(name).group_by(
                keys, values, aggs, device=setup.device, seed=seed
            )
            times[name] = res.total_seconds * 1e3
        winner = min(times, key=times.get)
        winners.append(winner)
        per_combo[label] = times
        result.add_row(label, *[times[a] for a in ALGORITHMS], winner)
    result.findings["part_agg_wins_4b_keys"] = float(
        winners[0] == "PART-AGG" and winners[1] == "PART-AGG"
    )
    # The join study's asymmetry (Figure 15): random folds are latency
    # bound and barely notice wider values, while partition/sort passes
    # move every byte — hash aggregation gains ground with 8B types.
    hash_growth = per_combo[TYPE_COMBOS[-1][0]]["HASH-AGG"] / per_combo[TYPE_COMBOS[0][0]]["HASH-AGG"]
    part_growth = per_combo[TYPE_COMBOS[-1][0]]["PART-AGG"] / per_combo[TYPE_COMBOS[0][0]]["PART-AGG"]
    result.findings["hash_less_type_sensitive"] = float(hash_growth < part_growth)
    return result
